"""The conditional/baseline window-probability engine.

Nearly every figure of the paper compares two probabilities:

* the **baseline**: the probability that a random node experiences a
  qualifying failure in a *random* day/week/month.  We define it by
  tiling each system's observation period into non-overlapping windows
  and computing the fraction of (node, window) tiles containing at least
  one qualifying event -- the natural unbiased estimator (trailing
  partial windows are discarded; an ablation bench compares against
  sliding windows);
* the **conditional**: the probability that a qualifying failure occurs
  in the window *following a trigger event*, at one of three spatial
  scopes -- the same node (Section III-A), another node of the same rack
  (III-B), or another node of the same system (III-C).  Triggers whose
  full window would overrun the observation period are censored
  (excluded), so every counted trigger had a complete window at risk.
  Simultaneous events (identical timestamps, e.g. one power outage
  recording outages on many nodes at once) do not count as follow-ups of
  each other: the window is the *open-closed* interval ``(t, t + span]``.

Everything here is expressed over plain ``(times, node_ids)`` event
arrays, so the same engine serves failures, failure subsets (by category
or subtype) and maintenance events.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..records.dataset import EventIndex
from ..records.timeutil import ObservationPeriod, Span, count_windows, window_index
from ..stats.proportion import (
    ProportionEstimate,
    TwoSampleResult,
    two_sample_z_test,
    wilson_interval,
)
from ..telemetry import counter_add


class WindowAnalysisError(ValueError):
    """Raised on inconsistent event arrays or scopes."""


class Scope(enum.Enum):
    """Spatial granularity of a conditional window query."""

    NODE = "node"      # qualifying events on the trigger's own node
    RACK = "rack"      # on *other* nodes of the trigger's rack
    SYSTEM = "system"  # on *other* nodes of the trigger's system

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Counts:
    """Raw (successes, trials) counts behind a probability estimate.

    Counts from several systems can be pooled with ``+`` before turning
    them into estimates, which is how group-level (group-1 / group-2)
    figures aggregate.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials < 0 or self.successes < 0 or self.successes > self.trials:
            raise WindowAnalysisError(
                f"invalid counts {self.successes}/{self.trials}"
            )

    def __add__(self, other: "Counts") -> "Counts":
        return Counts(self.successes + other.successes, self.trials + other.trials)

    def estimate(self, confidence: float = 0.95) -> ProportionEstimate:
        """Wilson-interval estimate of the underlying probability."""
        return wilson_interval(self.successes, self.trials, confidence)


ZERO_COUNTS = Counts(0, 0)


@dataclass(frozen=True, slots=True)
class WindowComparison:
    """A conditional-vs-baseline probability comparison (one figure bar).

    Attributes:
        span: window length used.
        conditional: probability after the trigger, with CI.
        baseline: random-window probability, with CI.
        test: two-sample z-test of conditional vs baseline.
        factor: conditional / baseline -- the figure annotation (NaN when
            the baseline is zero or either side had no trials).
    """

    span: Span
    conditional: ProportionEstimate
    baseline: ProportionEstimate
    test: TwoSampleResult
    factor: float


def _check_events(times: np.ndarray, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    nodes = np.asarray(nodes, dtype=np.int64)
    if times.ndim != 1 or times.shape != nodes.shape:
        raise WindowAnalysisError("times and node ids must be matching 1-D arrays")
    if times.size and np.any(np.diff(times) < 0):
        order = np.argsort(times, kind="stable")
        times, nodes = times[order], nodes[order]
    return times, nodes


def baseline_counts(
    target_times: np.ndarray,
    target_nodes: np.ndarray,
    num_nodes: int,
    period: ObservationPeriod,
    span: Span,
    node_subset: np.ndarray | None = None,
) -> Counts:
    """Tiled-window baseline counts for "a random node in a random window".

    Args:
        target_times / target_nodes: the qualifying event stream.
        num_nodes: node count of the system.
        period: observation period.
        span: window length.
        node_subset: restrict the trials (and events) to these nodes --
            used e.g. for "rest of the nodes" baselines in Section IV.

    Returns:
        ``Counts(successes=#(node, window) tiles with >= 1 event,
        trials=#nodes * #windows)``.
    """
    if num_nodes < 1:
        raise WindowAnalysisError(f"num_nodes must be >= 1, got {num_nodes}")
    counter_add("windows.baseline_cells", 1, path="percell")
    times, nodes = _check_events(target_times, target_nodes)
    n_windows = count_windows(period, span)
    if node_subset is None:
        n_nodes_at_risk = num_nodes
    else:
        node_subset = np.asarray(node_subset, dtype=np.int64)
        if node_subset.size == 0:
            raise WindowAnalysisError("node_subset must be non-empty")
        n_nodes_at_risk = int(np.unique(node_subset).size)
        keep = np.isin(nodes, node_subset)
        times, nodes = times[keep], nodes[keep]
    idx = window_index(times, period, span)
    valid = idx >= 0
    # Distinct (node, window) pairs containing at least one event.
    keys = nodes[valid] * np.int64(n_windows) + idx[valid]
    successes = int(np.unique(keys).size)
    return Counts(successes, n_nodes_at_risk * n_windows)


def conditional_counts(
    trigger_times: np.ndarray | None = None,
    trigger_nodes: np.ndarray | None = None,
    target_times: np.ndarray | None = None,
    target_nodes: np.ndarray | None = None,
    period: ObservationPeriod | None = None,
    span: Span | None = None,
    scope: Scope = Scope.NODE,
    rack_of: np.ndarray | None = None,
    num_nodes: int | None = None,
    target_index: EventIndex | None = None,
    trigger_index: EventIndex | None = None,
) -> Counts:
    """Conditional counts at node, rack or system scope.

    The follow-up window is ``(t, t + span]``, open at the trigger time
    (the trigger itself, and any simultaneous events, never count as
    their own follow-up).  Triggers with ``t + span > period.end`` are
    censored out of the trials.

    The unit at risk matches the paper's phrasing "the probability that
    *a node* fails in the window following ...":

    * NODE scope -- one trial per trigger; success when the trigger's
      *own* node has a qualifying event in the window.
    * RACK scope -- one trial per (trigger, other node in the trigger's
      rack) pair; success when that node has a qualifying event in the
      window.  Requires ``rack_of``.
    * SYSTEM scope -- one trial per (trigger, other node of the system)
      pair; requires ``num_nodes``.

    Counting *pairs* (rather than "any other node fails") is essential:
    in a 1024-node system some node almost surely fails every week, so
    the any-node probability saturates at 1 and carries no information,
    whereas the per-node probability reproduces the paper's 2.04% ->
    2.68% system-level result.

    Args:
        trigger_times / trigger_nodes: trigger event stream.
        target_times / target_nodes: qualifying (target) event stream.
        period: observation period.
        span: window length.
        scope: NODE, RACK or SYSTEM.
        rack_of: node -> rack id mapping, required for RACK scope.
        num_nodes: system node count, required for RACK/SYSTEM scope.
        target_index: pre-built index of the target stream (e.g. from
            :meth:`repro.records.dataset.FailureTable.events`).  This is
            the preferred, index-first spelling; passing the redundant
            ``target_times`` / ``target_nodes`` arrays alongside it is
            deprecated (they were silently ignored in older releases).
        trigger_index: pre-built index of the trigger stream; preferred
            over ``trigger_times`` / ``trigger_nodes`` for the same
            reason.
    """
    if period is None or span is None:
        raise WindowAnalysisError("period and span are required")
    counter_add("windows.conditional_cells", 1, path="percell")
    if trigger_index is not None:
        if trigger_times is not None or trigger_nodes is not None:
            warnings.warn(
                "trigger_times/trigger_nodes are ignored when trigger_index "
                "is given; pass only trigger_index",
                DeprecationWarning,
                stacklevel=2,
            )
        trig_t, trig_n = trigger_index.times, trigger_index.nodes
    else:
        if trigger_times is None or trigger_nodes is None:
            raise WindowAnalysisError(
                "need trigger_times/trigger_nodes or a trigger_index"
            )
        trig_t, trig_n = _check_events(trigger_times, trigger_nodes)
    if target_index is not None:
        if target_times is not None or target_nodes is not None:
            warnings.warn(
                "target_times/target_nodes are ignored when target_index "
                "is given; pass only target_index",
                DeprecationWarning,
                stacklevel=2,
            )
    else:
        if target_times is None or target_nodes is None:
            raise WindowAnalysisError(
                "need target_times/target_nodes or a target_index"
            )
        target_index = EventIndex(*_check_events(target_times, target_nodes))

    # Censor triggers without a complete follow-up window.
    alive = trig_t + span.days <= period.end
    trig_t, trig_n = trig_t[alive], trig_n[alive]
    n_triggers = int(trig_t.size)
    if n_triggers == 0:
        return ZERO_COUNTS

    own_counts = _per_node_window_counts(trig_t, trig_n, target_index, span)
    if scope is Scope.NODE:
        return Counts(int((own_counts > 0).sum()), n_triggers)

    if num_nodes is None:
        raise WindowAnalysisError(f"{scope} scope requires num_nodes")
    if scope is Scope.RACK:
        if rack_of is None:
            raise WindowAnalysisError("RACK scope requires a rack_of mapping")
        rack_of = np.asarray(rack_of, dtype=np.int64)
        if rack_of.shape != (num_nodes,):
            raise WindowAnalysisError(
                "rack_of must map every node of the system to a rack"
            )
        rack_sizes = np.bincount(rack_of, minlength=int(rack_of.max()) + 1)
        trig_racks = rack_of[trig_n]
        trials = int((rack_sizes[trig_racks] - 1).sum())
    else:
        trials = n_triggers * (num_nodes - 1)
    if trials == 0:
        return ZERO_COUNTS

    # successes = sum over triggers of the number of distinct *other*
    # in-scope nodes with >= 1 event in the trigger's window.  Decompose
    # into all in-scope nodes (per target-node block, vectorised over the
    # relevant triggers) minus the trigger's own node, which is exactly
    # the NODE-scope hit count already computed above.
    successes = -int((own_counts > 0).sum())
    if scope is Scope.RACK:
        # Group triggers by rack once; each target node then queries only
        # its rack's triggers.
        order = np.argsort(trig_racks, kind="stable")
        grouped_t = trig_t[order]
        grouped_racks = trig_racks[order]
        n_racks = int(rack_sizes.size)
        rack_starts = np.zeros(n_racks + 1, dtype=np.int64)
        np.cumsum(np.bincount(grouped_racks, minlength=n_racks), out=rack_starts[1:])
        for node in target_index.event_nodes():
            rack = int(rack_of[node]) if node < num_nodes else -1
            if rack < 0:
                continue
            sel = grouped_t[rack_starts[rack] : rack_starts[rack + 1]]
            if sel.size:
                successes += int(
                    (target_index.window_counts(node, sel, span.days) > 0).sum()
                )
    else:
        for node in target_index.event_nodes():
            successes += int(
                (target_index.window_counts(node, trig_t, span.days) > 0).sum()
            )
    return Counts(successes, trials)


def _per_node_window_counts(
    trig_t: np.ndarray,
    trig_n: np.ndarray,
    target_index: EventIndex,
    span: Span,
) -> np.ndarray:
    """#target events on the trigger's own node in each ``(t, t+span]``."""
    counts = np.zeros(trig_t.size, dtype=np.int64)
    if len(target_index) == 0 or trig_t.size == 0:
        return counts
    # Group the triggers by node once; each group queries its node's
    # pre-sorted block in the target index.
    order = np.argsort(trig_n, kind="stable")
    grouped = trig_n[order]
    bounds = np.flatnonzero(np.diff(grouped)) + 1
    for sel in np.split(order, bounds):
        node = int(trig_n[sel[0]])
        block = target_index.node_block(node)
        if block.size == 0:
            continue
        starts = trig_t[sel]
        lo = np.searchsorted(block, starts, side="right")
        hi = np.searchsorted(block, starts + span.days, side="right")
        counts[sel] = hi - lo
    return counts


class _TriggerPlan:
    """Censoring, node grouping and rack grouping of one trigger stream.

    Built once per trigger :class:`EventIndex` and reused for every
    (target, span) cell of a batched grid.  Because trigger times are
    sorted and window censoring (``t + span.days <= period.end``) is
    monotone in ``t``, the censored trigger set for any span is a prefix
    of the time-sorted stream -- per-span work reduces to a prefix count
    instead of a fresh mask-and-copy.
    """

    __slots__ = (
        "times",
        "nodes",
        "span_days",
        "n_alive",
        "node_groups",
        "rack_order",
        "rack_starts",
        "rack_trials_cumsum",
    )

    def __init__(
        self,
        trigger: EventIndex,
        period: ObservationPeriod,
        spans: Sequence[Span],
        rack_of: np.ndarray | None,
        rack_sizes: np.ndarray | None,
    ) -> None:
        t = trigger.times
        n = trigger.nodes
        self.times = t
        self.nodes = n
        self.span_days = [span.days for span in spans]
        # The same elementwise predicate as the per-cell kernel (NOT the
        # rearranged ``t <= end - days``, which differs in float).
        self.n_alive = [
            int(np.count_nonzero(t + days <= period.end))
            for days in self.span_days
        ]
        # Group triggers by node once; shared by every target's own-node
        # window queries.
        if t.size:
            order = np.argsort(n, kind="stable")
            grouped = n[order]
            bounds = np.flatnonzero(np.diff(grouped)) + 1
            self.node_groups = np.split(order, bounds)
        else:
            self.node_groups = []
        self.rack_order = None
        self.rack_starts = None
        self.rack_trials_cumsum = None
        if rack_sizes is not None:
            trig_racks = n if not t.size else rack_of[n]
            self.rack_order = np.argsort(trig_racks, kind="stable")
            n_racks = int(rack_sizes.size)
            self.rack_starts = np.zeros(n_racks + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(trig_racks, minlength=n_racks),
                out=self.rack_starts[1:],
            )
            self.rack_trials_cumsum = np.zeros(t.size + 1, dtype=np.int64)
            np.cumsum(rack_sizes[trig_racks] - 1, out=self.rack_trials_cumsum[1:])

    def own_hit_counts(self, target: EventIndex) -> list[int]:
        """Per-span number of censored triggers whose own node has a hit.

        One ``lo`` searchsorted per trigger-node block is shared by all
        spans; only the ``hi`` side is span-dependent.
        """
        n_spans = len(self.span_days)
        if len(target) == 0 or not self.node_groups:
            return [0] * n_spans
        hits = [np.zeros(self.times.size, dtype=bool) for _ in range(n_spans)]
        for sel in self.node_groups:
            block = target.node_block(int(self.nodes[sel[0]]))
            if block.size == 0:
                continue
            starts = self.times[sel]
            lo = np.searchsorted(block, starts, side="right")
            for k, days in enumerate(self.span_days):
                hi = np.searchsorted(block, starts + days, side="right")
                hits[k][sel] = hi > lo
        return [
            int(np.count_nonzero(hits[k][: self.n_alive[k]]))
            for k in range(n_spans)
        ]


def conditional_counts_batch(
    triggers: Sequence[EventIndex],
    targets: Sequence[EventIndex],
    period: ObservationPeriod,
    spans: Sequence[Span],
    scope: Scope = Scope.NODE,
    rack_of: np.ndarray | None = None,
    num_nodes: int | None = None,
) -> list[list[list[Counts]]]:
    """A trigger x target x span grid of conditional :class:`Counts`.

    Computes, in one pass per trigger stream, every cell that per-cell
    :func:`conditional_counts` calls would produce -- censoring, node
    grouping and rack grouping of each trigger stream happen once and
    are reused for every target and span, and the window-start
    ``searchsorted`` is shared across spans.  Results are exactly equal
    to the per-cell kernel (all reductions are integer counts of the
    same searchsorted comparisons).

    Args:
        triggers: trigger event streams (grid rows).
        targets: qualifying event streams (grid columns).
        period: observation period.
        spans: window lengths (grid depth).
        scope / rack_of / num_nodes: as in :func:`conditional_counts`.

    Returns:
        ``grid[i][j][k]`` = counts for ``(triggers[i], targets[j],
        spans[k])``.
    """
    spans = list(spans)
    counter_add("windows.conditional_batch_calls", 1)
    counter_add(
        "windows.conditional_cells",
        len(triggers) * len(targets) * len(spans),
        path="batch",
    )
    rack_sizes = None
    if scope is not Scope.NODE and num_nodes is None:
        raise WindowAnalysisError(f"{scope} scope requires num_nodes")
    if scope is Scope.RACK:
        if rack_of is None:
            raise WindowAnalysisError("RACK scope requires a rack_of mapping")
        rack_of = np.asarray(rack_of, dtype=np.int64)
        if rack_of.shape != (num_nodes,):
            raise WindowAnalysisError(
                "rack_of must map every node of the system to a rack"
            )
        rack_sizes = np.bincount(rack_of, minlength=int(rack_of.max()) + 1)
    grid: list[list[list[Counts]]] = []
    for trigger in triggers:
        plan = _TriggerPlan(trigger, period, spans, rack_of, rack_sizes)
        grid.append(
            [
                _batch_cell_counts(
                    plan, target, spans, scope, rack_of, num_nodes
                )
                for target in targets
            ]
        )
    return grid


def _batch_cell_counts(
    plan: _TriggerPlan,
    target: EventIndex,
    spans: Sequence[Span],
    scope: Scope,
    rack_of: np.ndarray | None,
    num_nodes: int | None,
) -> list[Counts]:
    """Per-span counts of one (trigger, target) pair of a batched grid."""
    n_spans = len(spans)
    own = plan.own_hit_counts(target)
    if scope is Scope.NODE:
        return [
            Counts(own[k], plan.n_alive[k]) if plan.n_alive[k] else ZERO_COUNTS
            for k in range(n_spans)
        ]

    # RACK / SYSTEM: pair trials; successes decompose into all in-scope
    # nodes (per target-node block) minus the trigger's own node.
    successes = [-own[k] for k in range(n_spans)]
    if scope is Scope.RACK:
        for node in target.event_nodes():
            rack = int(rack_of[node]) if node < num_nodes else -1
            if rack < 0:
                continue
            sel = plan.rack_order[
                plan.rack_starts[rack] : plan.rack_starts[rack + 1]
            ]
            if not sel.size:
                continue
            block = target.node_block(int(node))
            if not block.size:
                continue
            starts = plan.times[sel]
            lo = np.searchsorted(block, starts, side="right")
            for k, days in enumerate(plan.span_days):
                hi = np.searchsorted(block, starts + days, side="right")
                successes[k] += int(
                    np.count_nonzero((hi > lo) & (sel < plan.n_alive[k]))
                )
        trials = [
            int(plan.rack_trials_cumsum[plan.n_alive[k]])
            for k in range(n_spans)
        ]
    else:
        for node in target.event_nodes():
            block = target.node_block(int(node))
            if not block.size:
                continue
            lo = np.searchsorted(block, plan.times, side="right")
            for k, days in enumerate(plan.span_days):
                hi = np.searchsorted(block, plan.times + days, side="right")
                successes[k] += int(np.count_nonzero((hi > lo)[: plan.n_alive[k]]))
        trials = [plan.n_alive[k] * (num_nodes - 1) for k in range(n_spans)]
    return [
        Counts(successes[k], trials[k])
        if plan.n_alive[k] and trials[k]
        else ZERO_COUNTS
        for k in range(n_spans)
    ]


def baseline_counts_batch(
    targets: Sequence[EventIndex],
    num_nodes: int,
    period: ObservationPeriod,
    spans: Sequence[Span],
    node_subset: np.ndarray | None = None,
) -> list[list[Counts]]:
    """A target x span grid of tiled-window baseline :class:`Counts`.

    Exactly equivalent to per-cell :func:`baseline_counts` calls, but the
    event streams arrive pre-sorted as :class:`EventIndex` objects and a
    ``node_subset`` filter is applied once per target instead of once per
    (target, span) cell.

    Returns:
        ``grid[j][k]`` = counts for ``(targets[j], spans[k])``.
    """
    if num_nodes < 1:
        raise WindowAnalysisError(f"num_nodes must be >= 1, got {num_nodes}")
    spans = list(spans)
    counter_add("windows.baseline_batch_calls", 1)
    counter_add(
        "windows.baseline_cells", len(targets) * len(spans), path="batch"
    )
    subset = None
    n_nodes_at_risk = num_nodes
    if node_subset is not None:
        subset = np.asarray(node_subset, dtype=np.int64)
        if subset.size == 0:
            raise WindowAnalysisError("node_subset must be non-empty")
        n_nodes_at_risk = int(np.unique(subset).size)
    grid: list[list[Counts]] = []
    for target in targets:
        times, nodes = target.times, target.nodes
        if subset is not None:
            keep = np.isin(nodes, subset)
            times, nodes = times[keep], nodes[keep]
        row = []
        for span in spans:
            n_windows = count_windows(period, span)
            idx = window_index(times, period, span)
            valid = idx >= 0
            keys = nodes[valid] * np.int64(n_windows) + idx[valid]
            row.append(
                Counts(int(np.unique(keys).size), n_nodes_at_risk * n_windows)
            )
        grid.append(row)
    return grid


def compare(
    conditional: Counts,
    baseline: Counts,
    span: Span,
    confidence: float = 0.95,
    alpha: float = 0.05,
) -> WindowComparison:
    """Assemble a figure bar: estimates, test and factor annotation."""
    cond_est = conditional.estimate(confidence)
    base_est = baseline.estimate(confidence)
    test = two_sample_z_test(
        conditional.successes,
        conditional.trials,
        baseline.successes,
        baseline.trials,
        alpha=alpha,
    )
    if cond_est.defined and base_est.defined and base_est.value > 0:
        factor = cond_est.value / base_est.value
    else:
        factor = float("nan")
    return WindowComparison(
        span=span,
        conditional=cond_est,
        baseline=base_est,
        test=test,
        factor=factor,
    )


def sliding_baseline_counts(
    target_times: np.ndarray,
    target_nodes: np.ndarray,
    num_nodes: int,
    period: ObservationPeriod,
    span: Span,
    step: float,
) -> Counts:
    """Overlapping-window baseline (the ablation alternative).

    Windows start every ``step`` days; a (node, window) trial succeeds
    when the node has >= 1 qualifying event inside ``[start, start+span)``.
    Used by ``benchmarks/bench_ablation.py`` to show the tiling choice
    does not drive the paper's factors.
    """
    from ..records.timeutil import overlapping_window_starts

    times, nodes = _check_events(target_times, target_nodes)
    starts = overlapping_window_starts(period, span, step)
    trials = int(starts.size) * num_nodes
    index = EventIndex(times, nodes)
    successes = 0
    for node in index.event_nodes():
        if node >= num_nodes:
            continue
        block = index.node_block(int(node))
        l = np.searchsorted(block, starts, side="left")
        h = np.searchsorted(block, starts + span.days, side="left")
        successes += int(((h - l) > 0).sum())
    return Counts(successes, trials)
