"""The conditional/baseline window-probability engine.

Nearly every figure of the paper compares two probabilities:

* the **baseline**: the probability that a random node experiences a
  qualifying failure in a *random* day/week/month.  We define it by
  tiling each system's observation period into non-overlapping windows
  and computing the fraction of (node, window) tiles containing at least
  one qualifying event -- the natural unbiased estimator (trailing
  partial windows are discarded; an ablation bench compares against
  sliding windows);
* the **conditional**: the probability that a qualifying failure occurs
  in the window *following a trigger event*, at one of three spatial
  scopes -- the same node (Section III-A), another node of the same rack
  (III-B), or another node of the same system (III-C).  Triggers whose
  full window would overrun the observation period are censored
  (excluded), so every counted trigger had a complete window at risk.
  Simultaneous events (identical timestamps, e.g. one power outage
  recording outages on many nodes at once) do not count as follow-ups of
  each other: the window is the *open-closed* interval ``(t, t + span]``.

Everything here is expressed over plain ``(times, node_ids)`` event
arrays, so the same engine serves failures, failure subsets (by category
or subtype) and maintenance events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..records.dataset import EventIndex
from ..records.timeutil import ObservationPeriod, Span, count_windows, window_index
from ..stats.proportion import (
    ProportionEstimate,
    TwoSampleResult,
    two_sample_z_test,
    wilson_interval,
)


class WindowAnalysisError(ValueError):
    """Raised on inconsistent event arrays or scopes."""


class Scope(enum.Enum):
    """Spatial granularity of a conditional window query."""

    NODE = "node"      # qualifying events on the trigger's own node
    RACK = "rack"      # on *other* nodes of the trigger's rack
    SYSTEM = "system"  # on *other* nodes of the trigger's system

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Counts:
    """Raw (successes, trials) counts behind a probability estimate.

    Counts from several systems can be pooled with ``+`` before turning
    them into estimates, which is how group-level (group-1 / group-2)
    figures aggregate.
    """

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials < 0 or self.successes < 0 or self.successes > self.trials:
            raise WindowAnalysisError(
                f"invalid counts {self.successes}/{self.trials}"
            )

    def __add__(self, other: "Counts") -> "Counts":
        return Counts(self.successes + other.successes, self.trials + other.trials)

    def estimate(self, confidence: float = 0.95) -> ProportionEstimate:
        """Wilson-interval estimate of the underlying probability."""
        return wilson_interval(self.successes, self.trials, confidence)


ZERO_COUNTS = Counts(0, 0)


@dataclass(frozen=True, slots=True)
class WindowComparison:
    """A conditional-vs-baseline probability comparison (one figure bar).

    Attributes:
        span: window length used.
        conditional: probability after the trigger, with CI.
        baseline: random-window probability, with CI.
        test: two-sample z-test of conditional vs baseline.
        factor: conditional / baseline -- the figure annotation (NaN when
            the baseline is zero or either side had no trials).
    """

    span: Span
    conditional: ProportionEstimate
    baseline: ProportionEstimate
    test: TwoSampleResult
    factor: float


def _check_events(times: np.ndarray, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    nodes = np.asarray(nodes, dtype=np.int64)
    if times.ndim != 1 or times.shape != nodes.shape:
        raise WindowAnalysisError("times and node ids must be matching 1-D arrays")
    if times.size and np.any(np.diff(times) < 0):
        order = np.argsort(times, kind="stable")
        times, nodes = times[order], nodes[order]
    return times, nodes


def baseline_counts(
    target_times: np.ndarray,
    target_nodes: np.ndarray,
    num_nodes: int,
    period: ObservationPeriod,
    span: Span,
    node_subset: np.ndarray | None = None,
) -> Counts:
    """Tiled-window baseline counts for "a random node in a random window".

    Args:
        target_times / target_nodes: the qualifying event stream.
        num_nodes: node count of the system.
        period: observation period.
        span: window length.
        node_subset: restrict the trials (and events) to these nodes --
            used e.g. for "rest of the nodes" baselines in Section IV.

    Returns:
        ``Counts(successes=#(node, window) tiles with >= 1 event,
        trials=#nodes * #windows)``.
    """
    if num_nodes < 1:
        raise WindowAnalysisError(f"num_nodes must be >= 1, got {num_nodes}")
    times, nodes = _check_events(target_times, target_nodes)
    n_windows = count_windows(period, span)
    if node_subset is None:
        n_nodes_at_risk = num_nodes
    else:
        node_subset = np.asarray(node_subset, dtype=np.int64)
        if node_subset.size == 0:
            raise WindowAnalysisError("node_subset must be non-empty")
        n_nodes_at_risk = int(np.unique(node_subset).size)
        keep = np.isin(nodes, node_subset)
        times, nodes = times[keep], nodes[keep]
    idx = window_index(times, period, span)
    valid = idx >= 0
    # Distinct (node, window) pairs containing at least one event.
    keys = nodes[valid] * np.int64(n_windows) + idx[valid]
    successes = int(np.unique(keys).size)
    return Counts(successes, n_nodes_at_risk * n_windows)


def conditional_counts(
    trigger_times: np.ndarray,
    trigger_nodes: np.ndarray,
    target_times: np.ndarray,
    target_nodes: np.ndarray,
    period: ObservationPeriod,
    span: Span,
    scope: Scope = Scope.NODE,
    rack_of: np.ndarray | None = None,
    num_nodes: int | None = None,
    target_index: EventIndex | None = None,
) -> Counts:
    """Conditional counts at node, rack or system scope.

    The follow-up window is ``(t, t + span]``, open at the trigger time
    (the trigger itself, and any simultaneous events, never count as
    their own follow-up).  Triggers with ``t + span > period.end`` are
    censored out of the trials.

    The unit at risk matches the paper's phrasing "the probability that
    *a node* fails in the window following ...":

    * NODE scope -- one trial per trigger; success when the trigger's
      *own* node has a qualifying event in the window.
    * RACK scope -- one trial per (trigger, other node in the trigger's
      rack) pair; success when that node has a qualifying event in the
      window.  Requires ``rack_of``.
    * SYSTEM scope -- one trial per (trigger, other node of the system)
      pair; requires ``num_nodes``.

    Counting *pairs* (rather than "any other node fails") is essential:
    in a 1024-node system some node almost surely fails every week, so
    the any-node probability saturates at 1 and carries no information,
    whereas the per-node probability reproduces the paper's 2.04% ->
    2.68% system-level result.

    Args:
        trigger_times / trigger_nodes: trigger event stream.
        target_times / target_nodes: qualifying (target) event stream.
        period: observation period.
        span: window length.
        scope: NODE, RACK or SYSTEM.
        rack_of: node -> rack id mapping, required for RACK scope.
        num_nodes: system node count, required for RACK/SYSTEM scope.
        target_index: pre-built index of the target stream (e.g. from
            :meth:`repro.records.dataset.FailureTable.events`).  When
            given, ``target_times`` / ``target_nodes`` are ignored and
            the cached per-node grouping is reused across calls.
    """
    trig_t, trig_n = _check_events(trigger_times, trigger_nodes)
    if target_index is None:
        target_index = EventIndex(*_check_events(target_times, target_nodes))

    # Censor triggers without a complete follow-up window.
    alive = trig_t + span.days <= period.end
    trig_t, trig_n = trig_t[alive], trig_n[alive]
    n_triggers = int(trig_t.size)
    if n_triggers == 0:
        return ZERO_COUNTS

    own_counts = _per_node_window_counts(trig_t, trig_n, target_index, span)
    if scope is Scope.NODE:
        return Counts(int((own_counts > 0).sum()), n_triggers)

    if num_nodes is None:
        raise WindowAnalysisError(f"{scope} scope requires num_nodes")
    if scope is Scope.RACK:
        if rack_of is None:
            raise WindowAnalysisError("RACK scope requires a rack_of mapping")
        rack_of = np.asarray(rack_of, dtype=np.int64)
        if rack_of.shape != (num_nodes,):
            raise WindowAnalysisError(
                "rack_of must map every node of the system to a rack"
            )
        rack_sizes = np.bincount(rack_of, minlength=int(rack_of.max()) + 1)
        trig_racks = rack_of[trig_n]
        trials = int((rack_sizes[trig_racks] - 1).sum())
    else:
        trials = n_triggers * (num_nodes - 1)
    if trials == 0:
        return ZERO_COUNTS

    # successes = sum over triggers of the number of distinct *other*
    # in-scope nodes with >= 1 event in the trigger's window.  Decompose
    # into all in-scope nodes (per target-node block, vectorised over the
    # relevant triggers) minus the trigger's own node, which is exactly
    # the NODE-scope hit count already computed above.
    successes = -int((own_counts > 0).sum())
    if scope is Scope.RACK:
        # Group triggers by rack once; each target node then queries only
        # its rack's triggers.
        order = np.argsort(trig_racks, kind="stable")
        grouped_t = trig_t[order]
        grouped_racks = trig_racks[order]
        n_racks = int(rack_sizes.size)
        rack_starts = np.zeros(n_racks + 1, dtype=np.int64)
        np.cumsum(np.bincount(grouped_racks, minlength=n_racks), out=rack_starts[1:])
        for node in target_index.event_nodes():
            rack = int(rack_of[node]) if node < num_nodes else -1
            if rack < 0:
                continue
            sel = grouped_t[rack_starts[rack] : rack_starts[rack + 1]]
            if sel.size:
                successes += int(
                    (target_index.window_counts(node, sel, span.days) > 0).sum()
                )
    else:
        for node in target_index.event_nodes():
            successes += int(
                (target_index.window_counts(node, trig_t, span.days) > 0).sum()
            )
    return Counts(successes, trials)


def _per_node_window_counts(
    trig_t: np.ndarray,
    trig_n: np.ndarray,
    target_index: EventIndex,
    span: Span,
) -> np.ndarray:
    """#target events on the trigger's own node in each ``(t, t+span]``."""
    counts = np.zeros(trig_t.size, dtype=np.int64)
    if len(target_index) == 0 or trig_t.size == 0:
        return counts
    # Group the triggers by node once; each group queries its node's
    # pre-sorted block in the target index.
    order = np.argsort(trig_n, kind="stable")
    grouped = trig_n[order]
    bounds = np.flatnonzero(np.diff(grouped)) + 1
    for sel in np.split(order, bounds):
        node = int(trig_n[sel[0]])
        block = target_index.node_block(node)
        if block.size == 0:
            continue
        starts = trig_t[sel]
        lo = np.searchsorted(block, starts, side="right")
        hi = np.searchsorted(block, starts + span.days, side="right")
        counts[sel] = hi - lo
    return counts


def compare(
    conditional: Counts,
    baseline: Counts,
    span: Span,
    confidence: float = 0.95,
    alpha: float = 0.05,
) -> WindowComparison:
    """Assemble a figure bar: estimates, test and factor annotation."""
    cond_est = conditional.estimate(confidence)
    base_est = baseline.estimate(confidence)
    test = two_sample_z_test(
        conditional.successes,
        conditional.trials,
        baseline.successes,
        baseline.trials,
        alpha=alpha,
    )
    if cond_est.defined and base_est.defined and base_est.value > 0:
        factor = cond_est.value / base_est.value
    else:
        factor = float("nan")
    return WindowComparison(
        span=span,
        conditional=cond_est,
        baseline=base_est,
        test=test,
        factor=factor,
    )


def sliding_baseline_counts(
    target_times: np.ndarray,
    target_nodes: np.ndarray,
    num_nodes: int,
    period: ObservationPeriod,
    span: Span,
    step: float,
) -> Counts:
    """Overlapping-window baseline (the ablation alternative).

    Windows start every ``step`` days; a (node, window) trial succeeds
    when the node has >= 1 qualifying event inside ``[start, start+span)``.
    Used by ``benchmarks/bench_ablation.py`` to show the tiling choice
    does not drive the paper's factors.
    """
    from ..records.timeutil import overlapping_window_starts

    times, nodes = _check_events(target_times, target_nodes)
    starts = overlapping_window_starts(period, span, step)
    trials = int(starts.size) * num_nodes
    index = EventIndex(times, nodes)
    successes = 0
    for node in index.event_nodes():
        if node >= num_nodes:
            continue
        block = index.node_block(int(node))
        l = np.searchsorted(block, starts, side="left")
        h = np.searchsorted(block, starts + span.days, side="left")
        successes += int(((h - l) > 0).sum())
    return Counts(successes, trials)
