"""Repair times, downtime and availability.

The LANL records carry a repair time for every outage; the paper uses
them implicitly (a node outage is an interruption) but does not analyse
them.  This module adds the standard repair-time view from the companion
literature [12]: mean time to repair by root cause, downtime share per
category, fitted repair-time distributions, and per-system availability
-- the operational quantities a checkpoint or scheduling model consumes
alongside the failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..records.dataset import SystemDataset
from ..records.taxonomy import Category, all_categories
from ..stats.descriptive import SampleSummary, summarize
from ..stats.distfit import DistFitError, DistributionFit, best_fit


class DowntimeAnalysisError(ValueError):
    """Raised when downtime data is absent or degenerate."""


@dataclass(frozen=True, slots=True)
class RepairTimeResult:
    """Repair-time statistics for one population of failures.

    Attributes:
        category: root cause analysed (None = all failures).
        summary: five-number summary of repair hours.
        fitted: AIC-best distribution fit of the repair times (None when
            fitting is impossible, e.g. all-equal samples).
    """

    category: Category | None
    summary: SampleSummary
    fitted: DistributionFit | None

    @property
    def mttr_hours(self) -> float:
        """Mean time to repair, hours."""
        return self.summary.mean


def _repair_hours(
    systems: Sequence[SystemDataset], category: Category | None
) -> np.ndarray:
    hours = [
        f.downtime_hours
        for ds in systems
        for f in ds.failures
        if f.downtime_hours > 0 and (category is None or f.category is category)
    ]
    return np.asarray(hours, dtype=float)


def repair_times(
    systems: Sequence[SystemDataset],
    category: Category | None = None,
) -> RepairTimeResult:
    """Repair-time statistics for one category (or all failures)."""
    if not systems:
        raise DowntimeAnalysisError("need at least one system")
    hours = _repair_hours(systems, category)
    if hours.size == 0:
        raise DowntimeAnalysisError(
            f"no repair times recorded for {category or 'any category'}"
        )
    fitted = None
    if hours.size >= 8 and np.ptp(hours) > 0:
        try:
            fitted = best_fit(hours)
        except DistFitError:
            fitted = None
    return RepairTimeResult(
        category=category, summary=summarize(hours), fitted=fitted
    )


def repair_times_by_category(
    systems: Sequence[SystemDataset],
) -> dict[Category, RepairTimeResult]:
    """Per-category repair-time statistics (categories with data only)."""
    out = {}
    for cat in all_categories():
        try:
            out[cat] = repair_times(systems, cat)
        except DowntimeAnalysisError:
            continue
    if not out:
        raise DowntimeAnalysisError("no repair times recorded at all")
    return out


def downtime_share_by_category(
    systems: Sequence[SystemDataset],
) -> Mapping[Category, float]:
    """Fraction of total downtime attributable to each root cause.

    A category can dominate downtime without dominating counts (few but
    long outages) -- the distinction operators budget by.
    """
    totals = {cat: 0.0 for cat in all_categories()}
    for ds in systems:
        for f in ds.failures:
            totals[f.category] += f.downtime_hours
    grand = sum(totals.values())
    if grand <= 0:
        raise DowntimeAnalysisError("no downtime recorded")
    return {cat: totals[cat] / grand for cat in totals}


@dataclass(frozen=True, slots=True)
class AvailabilityResult:
    """Availability accounting for one system.

    Attributes:
        system_id: the system.
        node_hours: total node-hours in the observation period.
        downtime_hours: summed outage repair time.
        maintenance_hours: summed unscheduled-maintenance duration.
        availability: fraction of node-hours the system was up.
    """

    system_id: int
    node_hours: float
    downtime_hours: float
    maintenance_hours: float

    @property
    def availability(self) -> float:
        lost = self.downtime_hours + self.maintenance_hours
        return max(0.0, 1.0 - lost / self.node_hours)

    @property
    def nines(self) -> float:
        """Availability expressed as 'number of nines'."""
        unavail = 1.0 - self.availability
        if unavail <= 0:
            return float("inf")
        return float(-np.log10(unavail))


def availability(ds: SystemDataset) -> AvailabilityResult:
    """Availability accounting for one system."""
    node_hours = ds.num_nodes * ds.period.length * 24.0
    downtime = float(sum(f.downtime_hours for f in ds.failures))
    maintenance = float(sum(m.duration_hours for m in ds.maintenance))
    if node_hours <= 0:
        raise DowntimeAnalysisError("empty observation period")
    return AvailabilityResult(
        system_id=ds.system_id,
        node_hours=node_hours,
        downtime_hours=downtime,
        maintenance_hours=maintenance,
    )


def render_downtime_report(systems: Sequence[SystemDataset]) -> str:
    """Text table: MTTR and downtime share per category, availability."""
    lines = ["== Companion: repair times and availability =="]
    try:
        by_cat = repair_times_by_category(systems)
        shares = downtime_share_by_category(systems)
    except DowntimeAnalysisError as exc:
        return "\n".join([*lines, str(exc)])
    lines.append(
        f"{'category':<14s} {'MTTR h':>8s} {'median':>8s} {'max':>9s} "
        f"{'share':>7s} {'best fit':>12s}"
    )
    for cat, r in by_cat.items():
        fit_name = r.fitted.family if r.fitted else "-"
        lines.append(
            f"{cat.value:<14s} {r.mttr_hours:>8.2f} {r.summary.median:>8.2f} "
            f"{r.summary.maximum:>9.1f} {shares.get(cat, 0.0):>7.1%} "
            f"{fit_name:>12s}"
        )
    for ds in systems:
        try:
            a = availability(ds)
        except DowntimeAnalysisError:
            continue
        lines.append(
            f"system {ds.system_id}: availability {a.availability:.5f} "
            f"({a.nines:.1f} nines; {a.downtime_hours:.0f} h outage + "
            f"{a.maintenance_hours:.0f} h maintenance)"
        )
    return "\n".join(lines)
