"""Section VII: the impact of environmental factors, in particular power.

* **Figure 9** -- breakdown of environmental failures into power outages,
  power spikes, UPS failures, chiller failures and other environment
  issues (:func:`environment_breakdown`);
* **Figure 10** -- impact of the four power problems (outage, spike,
  power-supply failure, UPS failure) on hardware failures, per timespan
  (:func:`hardware_impact`) and per hardware component
  (:func:`hardware_component_impact`);
* **Section VII-A.2** -- unscheduled-maintenance inflation after power
  problems (:func:`maintenance_impact`);
* **Figure 11** -- the analogous software-failure analyses
  (:func:`software_impact`, :func:`software_subtype_impact`);
* **Figure 12** -- the time/space layout of power problems across one
  system's nodes (:func:`time_space_layout`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..records.dataset import SystemDataset
from ..records.taxonomy import (
    Category,
    EnvironmentSubtype,
    HardwareSubtype,
    SoftwareSubtype,
    Subtype,
)
from ..records.timeutil import ALL_SPANS, Span
from .cache import (
    fail_kind,
    maint_kind,
    pooled_baseline_grid,
    pooled_conditional_grid,
    split_kind,
)
from .windows import (
    Scope,
    WindowComparison,
    compare,
)


class PowerAnalysisError(ValueError):
    """Raised on invalid power-analysis inputs."""


#: The four power problems of Section VII, in the paper's figure order.
POWER_TRIGGERS: tuple[Subtype, ...] = (
    EnvironmentSubtype.POWER_OUTAGE,
    EnvironmentSubtype.POWER_SPIKE,
    HardwareSubtype.POWER_SUPPLY,
    EnvironmentSubtype.UPS,
)

#: Hardware components reported in Figure 10 (right).
FIG10_COMPONENTS: tuple[HardwareSubtype, ...] = (
    HardwareSubtype.POWER_SUPPLY,
    HardwareSubtype.MEMORY,
    HardwareSubtype.NODE_BOARD,
    HardwareSubtype.FAN,
    HardwareSubtype.CPU,
)

#: Software subtypes reported in Figure 11 (right).
FIG11_SUBTYPES: tuple[SoftwareSubtype, ...] = (
    SoftwareSubtype.DST,
    SoftwareSubtype.OTHER_SW,
    SoftwareSubtype.PATCH_INSTALL,
    SoftwareSubtype.OS,
    SoftwareSubtype.PFS,
    SoftwareSubtype.CFS,
)


def environment_breakdown(
    systems: Sequence[SystemDataset],
) -> Mapping[EnvironmentSubtype, float]:
    """Figure 9: share of each subtype among environmental failures.

    The paper: power outages 49%, power spikes 21%, UPS 15%, chillers 9%,
    other environment 6%.
    """
    totals = {sub: 0 for sub in EnvironmentSubtype}
    for ds in systems:
        table = ds.failure_table
        for sub in EnvironmentSubtype:
            totals[sub] += int(table.mask(subtype=sub).sum())
    grand = sum(totals.values())
    if grand == 0:
        raise PowerAnalysisError("no environmental failures in these systems")
    return {sub: totals[sub] / grand for sub in EnvironmentSubtype}


@dataclass(frozen=True, slots=True)
class PowerImpactCell:
    """One Figure 10/11 bar: target probability after a power trigger.

    Attributes:
        trigger: the power problem.
        target: target category (HW/SW) or specific subtype.
        span: window length.
        comparison: conditional vs random-window comparison.
    """

    trigger: Subtype
    target: Category | Subtype
    span: Span
    comparison: WindowComparison


def _impact_cells(
    systems: Sequence[SystemDataset],
    triggers: Sequence[Subtype],
    targets: Sequence[Category | Subtype],
    spans: Sequence[Span],
) -> list[PowerImpactCell]:
    """Shared engine for Figures 10, 11 and 13: subtype-triggered impacts.

    One batched grid pass computes every ``trigger x target x span``
    cell; each trigger stream is censored and grouped once per system
    and reused for all targets and spans.
    """
    if not systems:
        raise PowerAnalysisError("need at least one system")
    trigger_kinds = [fail_kind(subtype=trig) for trig in triggers]
    target_kinds = [split_kind(target) for target in targets]
    span_list = list(spans)
    bases = pooled_baseline_grid(systems, target_kinds, span_list)
    grid = pooled_conditional_grid(
        systems, trigger_kinds, target_kinds, span_list, Scope.NODE
    )
    cells = []
    for j, target in enumerate(targets):
        for k, span in enumerate(span_list):
            for i, trig in enumerate(triggers):
                cells.append(
                    PowerImpactCell(
                        trigger=trig,
                        target=target,
                        span=span,
                        comparison=compare(grid[i][j][k], bases[j][k], span),
                    )
                )
    return cells


def hardware_impact(
    systems: Sequence[SystemDataset],
    spans: Sequence[Span] = ALL_SPANS,
) -> list[PowerImpactCell]:
    """Figure 10 (left): P(hardware failure after each power problem).

    The paper: all four power problems raise hardware failure rates; in
    the month window all land at 5-10X, spikes act with a delay (weak on
    the day, strong by the month).
    """
    return _impact_cells(
        systems, POWER_TRIGGERS, [Category.HARDWARE], spans
    )


def hardware_component_impact(
    systems: Sequence[SystemDataset],
    components: Sequence[HardwareSubtype] = FIG10_COMPONENTS,
) -> list[PowerImpactCell]:
    """Figure 10 (right): per-component month probabilities after power
    problems.

    The paper: node boards and power supplies jump 16-20X after outages,
    memory DIMMs react more to spikes (13.7X) than outages (5X), the
    strongest increases follow power-supply failures (40X+ for fans and
    power supplies), and CPUs show no clear increase anywhere.
    """
    return _impact_cells(
        systems, POWER_TRIGGERS, list(components), [Span.MONTH]
    )


def software_impact(
    systems: Sequence[SystemDataset],
    spans: Sequence[Span] = ALL_SPANS,
) -> list[PowerImpactCell]:
    """Figure 11 (left): P(software failure after each power problem).

    The paper: outages and UPS failures are strongest (45X / 29X weekly);
    spikes and PSU failures still 10-20X.
    """
    return _impact_cells(
        systems, POWER_TRIGGERS, [Category.SOFTWARE], spans
    )


def software_subtype_impact(
    systems: Sequence[SystemDataset],
    subtypes: Sequence[SoftwareSubtype] = FIG11_SUBTYPES,
) -> list[PowerImpactCell]:
    """Figure 11 (right): month probabilities of each software subtype
    after power problems.

    The paper: storage dominates -- most power-induced software outages
    are distributed-storage (DST), parallel-file-system (PFS) or
    cluster-file-system (CFS) failures rather than OS issues.
    """
    return _impact_cells(
        systems, POWER_TRIGGERS, list(subtypes), [Span.MONTH]
    )


@dataclass(frozen=True, slots=True)
class MaintenanceImpactCell:
    """Section VII-A.2: unscheduled maintenance after a power problem."""

    trigger: Subtype
    span: Span
    comparison: WindowComparison


def maintenance_impact(
    systems: Sequence[SystemDataset],
    span: Span = Span.MONTH,
    hardware_only: bool = True,
) -> list[MaintenanceImpactCell]:
    """P(unscheduled maintenance within a month of each power problem).

    The paper: ~25% of affected nodes within a month of an outage or
    spike (~90X a random month), 8% after a PSU failure (~30X), 28%
    after a UPS failure (~100X).
    """
    if not systems:
        raise PowerAnalysisError("need at least one system")
    maintenance = maint_kind(hardware_only)
    base = pooled_baseline_grid(systems, [maintenance], [span])[0][0]
    grid = pooled_conditional_grid(
        systems,
        [fail_kind(subtype=trig) for trig in POWER_TRIGGERS],
        [maintenance],
        [span],
        Scope.NODE,
    )
    return [
        MaintenanceImpactCell(
            trigger=trig,
            span=span,
            comparison=compare(grid[i][0][0], base, span),
        )
        for i, trig in enumerate(POWER_TRIGGERS)
    ]


@dataclass(frozen=True, slots=True)
class TimeSpaceLayout:
    """Figure 12: when and where each power problem hit one system.

    Attributes:
        system_id: the system (the paper uses system 2).
        points: mapping from power-problem subtype to ``(times, nodes)``
            scatter arrays.
        node_spread: per-subtype number of distinct affected nodes.
        repeat_share: per-subtype fraction of events on nodes that were
            hit more than once by the same problem (high for PSU
            failures: chronic per-node weakness).
    """

    system_id: int
    points: Mapping[Subtype, tuple[np.ndarray, np.ndarray]]
    node_spread: Mapping[Subtype, int]
    repeat_share: Mapping[Subtype, float]


def time_space_layout(ds: SystemDataset) -> TimeSpaceLayout:
    """Figure 12: scatter data of power problems over time and node id."""
    points = {}
    spread = {}
    repeat = {}
    for sub in POWER_TRIGGERS:
        times, nodes = ds.failure_table.select(subtype=sub)
        points[sub] = (times, nodes)
        uniq, counts = (
            np.unique(nodes, return_counts=True) if nodes.size else (nodes, nodes)
        )
        spread[sub] = int(uniq.size)
        if nodes.size:
            repeated_nodes = uniq[counts > 1]
            repeat[sub] = float(
                np.isin(nodes, repeated_nodes).sum() / nodes.size
            )
        else:
            repeat[sub] = float("nan")
    return TimeSpaceLayout(
        system_id=ds.system_id,
        points=points,
        node_spread=spread,
        repeat_share=repeat,
    )
