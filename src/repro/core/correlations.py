"""Section III: how are failures in HPC systems correlated?

Implements every analysis of the paper's Section III on top of the
window engine:

* **III-A.1** -- daily/weekly failure probability after any failure vs a
  random day/week (:func:`same_node_any`);
* **III-A.2 / Figure 1(a)** -- the probability that a node fails within
  a week of a failure of type X (:func:`same_node_by_trigger`);
* **III-A.3 / Figure 1(b)** -- the probability of a type-X failure after
  a same-type failure, after any failure, and in a random week
  (:func:`same_node_by_target`), plus the full pairwise matrix
  (:func:`pairwise_matrix`);
* **III-A.4** -- memory/CPU subtype correlations
  (:func:`hardware_detail`);
* **III-B / Figure 2** -- the same analyses at rack scope
  (:func:`same_rack_by_trigger`, :func:`same_rack_by_target`);
* **III-C / Figure 3** -- system scope (:func:`same_system_any`,
  :func:`same_system_by_trigger`).

All functions accept a list of systems and pool counts across them, so a
"group-1" result is obtained by passing the group-1 systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..records.dataset import SystemDataset
from ..records.taxonomy import (
    Category,
    HardwareSubtype,
    Subtype,
    all_categories,
)
from ..records.timeutil import Span
from .windows import (
    Counts,
    Scope,
    WindowAnalysisError,
    WindowComparison,
    ZERO_COUNTS,
    baseline_counts,
    compare,
    conditional_counts,
)


def _rack_mapping(ds: SystemDataset) -> np.ndarray | None:
    return ds.rack_of


def _events(
    ds: SystemDataset,
    category: Category | None = None,
    subtype: Subtype | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    idx = ds.failure_table.events(category=category, subtype=subtype)
    return idx.times, idx.nodes


def pooled_baseline(
    systems: Sequence[SystemDataset],
    span: Span,
    category: Category | None = None,
    subtype: Subtype | None = None,
) -> Counts:
    """Baseline counts pooled over systems: 'a random node, random window'."""
    if not systems:
        raise WindowAnalysisError("need at least one system")
    total = ZERO_COUNTS
    for ds in systems:
        t, n = _events(ds, category, subtype)
        total = total + baseline_counts(t, n, ds.num_nodes, ds.period, span)
    return total


def pooled_conditional(
    systems: Sequence[SystemDataset],
    span: Span,
    trigger_category: Category | None = None,
    trigger_subtype: Subtype | None = None,
    target_category: Category | None = None,
    target_subtype: Subtype | None = None,
    scope: Scope = Scope.NODE,
) -> Counts:
    """Conditional counts pooled over systems.

    Systems without a layout are skipped for RACK scope (the paper can
    only run the rack analysis on group-1 systems, which have machine
    layout files).
    """
    if not systems:
        raise WindowAnalysisError("need at least one system")
    total = ZERO_COUNTS
    for ds in systems:
        rack_of = _rack_mapping(ds) if scope is Scope.RACK else None
        if scope is Scope.RACK and rack_of is None:
            continue
        trig_idx = ds.failure_table.events(trigger_category, trigger_subtype)
        targ_idx = ds.failure_table.events(target_category, target_subtype)
        total = total + conditional_counts(
            trig_idx.times,
            trig_idx.nodes,
            targ_idx.times,
            targ_idx.nodes,
            ds.period,
            span,
            scope=scope,
            rack_of=rack_of,
            num_nodes=ds.num_nodes,
            target_index=targ_idx,
        )
    return total


@dataclass(frozen=True, slots=True)
class TriggerResult:
    """One Figure-1(a)-style bar: follow-up probability after type X."""

    trigger: Category | Subtype | None
    comparison: WindowComparison


def same_node_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-A.1: P(node fails in window after any failure) vs random.

    The paper reports daily 0.31% -> 7.2% (group-1, ~20X) and 4.6% ->
    21.45% (group-2, ~5X), weekly 2.04% -> 15.64% and 22.5% -> 60.4%.
    """
    cond = pooled_conditional(systems, span, scope=Scope.NODE)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_node_by_trigger(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    triggers: Sequence[Category] | None = None,
) -> list[TriggerResult]:
    """Figure 1(a): P(any follow-up within ``span`` | failure of type X).

    Returns one entry per trigger category, each against the common
    any-failure baseline.
    """
    base = pooled_baseline(systems, span)
    out = []
    for trig in triggers or all_categories():
        cond = pooled_conditional(systems, span, trigger_category=trig)
        out.append(TriggerResult(trig, compare(cond, base, span)))
    return out


@dataclass(frozen=True, slots=True)
class TargetResult:
    """One Figure-1(b)-style bar group for target type X.

    Attributes:
        target: the follow-up failure type the bars are about.
        after_any: P(type-X failure in window after ANY failure).
        after_same: P(type-X failure in window after a type-X failure).
        random: the type-X random-window baseline.
    """

    target: Category | Subtype
    after_any: WindowComparison
    after_same: WindowComparison

    @property
    def random(self):
        """The baseline estimate (shared by both comparisons)."""
        return self.after_any.baseline


def same_node_by_target(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    targets: Sequence[Category | Subtype] | None = None,
    scope: Scope = Scope.NODE,
) -> list[TargetResult]:
    """Figure 1(b) (NODE scope) / Figure 2(b) (RACK scope).

    For each target type X: probability of a type-X failure in the window
    following (a) any failure, (b) a failure of the same type, against
    the type-X random-window baseline.  The paper's headline: same-type
    triggers dominate (up to ~700X for ENV/NET in group-1 at node scope,
    ~170X for ENV at rack scope).
    """
    if targets is None:
        targets = [
            *all_categories(),
            HardwareSubtype.MEMORY,
            HardwareSubtype.CPU,
        ]
    out = []
    for target in targets:
        t_cat = target if isinstance(target, Category) else None
        t_sub = None if isinstance(target, Category) else target
        base = pooled_baseline(systems, span, category=t_cat, subtype=t_sub)
        after_any = pooled_conditional(
            systems,
            span,
            target_category=t_cat,
            target_subtype=t_sub,
            scope=scope,
        )
        after_same = pooled_conditional(
            systems,
            span,
            trigger_category=t_cat,
            trigger_subtype=t_sub,
            target_category=t_cat,
            target_subtype=t_sub,
            scope=scope,
        )
        out.append(
            TargetResult(
                target=target,
                after_any=compare(after_any, base, span),
                after_same=compare(after_same, base, span),
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class PairwiseCell:
    """One p(x, y) cell of the Section III-A.3 pairwise analysis."""

    trigger: Category
    target: Category
    comparison: WindowComparison


def pairwise_matrix(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    scope: Scope = Scope.NODE,
) -> list[PairwiseCell]:
    """All pairwise p(x, y): P(type-Y failure in window after type-X).

    Each cell compares against the type-Y random-window baseline.  The
    paper uses this to spot the ENV/NET/SW cross-correlation triangle.
    """
    cells = []
    for target in all_categories():
        base = pooled_baseline(systems, span, category=target)
        for trigger in all_categories():
            cond = pooled_conditional(
                systems,
                span,
                trigger_category=trigger,
                target_category=target,
                scope=scope,
            )
            cells.append(
                PairwiseCell(trigger, target, compare(cond, base, span))
            )
    return cells


def hardware_detail(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    scope: Scope = Scope.NODE,
) -> list[TargetResult]:
    """Section III-A.4: memory and CPU same-subtype correlations.

    The paper: weekly memory-failure probability after a memory failure
    is 20.23% vs 0.21% random in group-1 (~100X); group-2 goes from 4.2%
    to 12.6%.
    """
    return same_node_by_target(
        systems,
        span,
        targets=[HardwareSubtype.MEMORY, HardwareSubtype.CPU],
        scope=scope,
    )


def same_rack_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-B: P(another node in the rack fails within the window).

    Paper: weekly 4.6% vs baseline 2.04% (>2X); daily 1.2% vs 0.31% (~3X).
    """
    cond = pooled_conditional(systems, span, scope=Scope.RACK)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_rack_by_trigger(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TriggerResult]:
    """Figure 2(a): rack-scope follow-up probability by trigger type."""
    base = pooled_baseline(systems, span)
    out = []
    for trig in all_categories():
        cond = pooled_conditional(
            systems, span, trigger_category=trig, scope=Scope.RACK
        )
        out.append(TriggerResult(trig, compare(cond, base, span)))
    return out


def same_rack_by_target(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TargetResult]:
    """Figure 2(b): rack-scope same-type vs any-type target probabilities."""
    return same_node_by_target(systems, span, scope=Scope.RACK)


def same_system_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-C: P(another node in the system fails within the window).

    Paper: weekly 2.04% -> 2.68% (group-1), 22.5% -> 35.3% (group-2);
    neither significant under the two-sample test.
    """
    cond = pooled_conditional(systems, span, scope=Scope.SYSTEM)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_system_by_trigger(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TriggerResult]:
    """Figure 3: system-scope follow-up probability by trigger type.

    Paper: software (1.27X, significant), hardware and human failures
    raise follow-up probability in group-1; network dominates group-2
    (3.69X).
    """
    base = pooled_baseline(systems, span)
    out = []
    for trig in all_categories():
        cond = pooled_conditional(
            systems, span, trigger_category=trig, scope=Scope.SYSTEM
        )
        out.append(TriggerResult(trig, compare(cond, base, span)))
    return out
