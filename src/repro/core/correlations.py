"""Section III: how are failures in HPC systems correlated?

Implements every analysis of the paper's Section III on top of the
window engine:

* **III-A.1** -- daily/weekly failure probability after any failure vs a
  random day/week (:func:`same_node_any`);
* **III-A.2 / Figure 1(a)** -- the probability that a node fails within
  a week of a failure of type X (:func:`same_node_by_trigger`);
* **III-A.3 / Figure 1(b)** -- the probability of a type-X failure after
  a same-type failure, after any failure, and in a random week
  (:func:`same_node_by_target`), plus the full pairwise matrix
  (:func:`pairwise_matrix`);
* **III-A.4** -- memory/CPU subtype correlations
  (:func:`hardware_detail`);
* **III-B / Figure 2** -- the same analyses at rack scope
  (:func:`same_rack_by_trigger`, :func:`same_rack_by_target`);
* **III-C / Figure 3** -- system scope (:func:`same_system_any`,
  :func:`same_system_by_trigger`).

All functions accept a list of systems and pool counts across them, so a
"group-1" result is obtained by passing the group-1 systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..records.dataset import SystemDataset
from ..records.taxonomy import (
    Category,
    HardwareSubtype,
    Subtype,
    all_categories,
)
from ..records.timeutil import Span
from .cache import (
    fail_kind,
    pooled_baseline_grid as _pooled_baseline_grid,
    pooled_conditional_grid as _pooled_conditional_grid,
    split_kind,
)
from .windows import (
    Counts,
    Scope,
    WindowComparison,
    compare,
)

#: The any-failure event kind (no category or subtype filter).
_ANY = fail_kind()


def pooled_baseline(
    systems: Sequence[SystemDataset],
    span: Span,
    category: Category | None = None,
    subtype: Subtype | None = None,
) -> Counts:
    """Baseline counts pooled over systems: 'a random node, random window'."""
    kind = fail_kind(category=category, subtype=subtype)
    return _pooled_baseline_grid(systems, [kind], [span])[0][0]


def pooled_conditional(
    systems: Sequence[SystemDataset],
    span: Span,
    trigger_category: Category | None = None,
    trigger_subtype: Subtype | None = None,
    target_category: Category | None = None,
    target_subtype: Subtype | None = None,
    scope: Scope = Scope.NODE,
) -> Counts:
    """Conditional counts pooled over systems.

    Systems without a layout are skipped for RACK scope (the paper can
    only run the rack analysis on group-1 systems, which have machine
    layout files).
    """
    trigger = fail_kind(category=trigger_category, subtype=trigger_subtype)
    target = fail_kind(category=target_category, subtype=target_subtype)
    return _pooled_conditional_grid(
        systems, [trigger], [target], [span], scope
    )[0][0][0]


@dataclass(frozen=True, slots=True)
class TriggerResult:
    """One Figure-1(a)-style bar: follow-up probability after type X."""

    trigger: Category | Subtype | None
    comparison: WindowComparison


def same_node_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-A.1: P(node fails in window after any failure) vs random.

    The paper reports daily 0.31% -> 7.2% (group-1, ~20X) and 4.6% ->
    21.45% (group-2, ~5X), weekly 2.04% -> 15.64% and 22.5% -> 60.4%.
    """
    cond = pooled_conditional(systems, span, scope=Scope.NODE)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_node_by_trigger(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    triggers: Sequence[Category] | None = None,
) -> list[TriggerResult]:
    """Figure 1(a): P(any follow-up within ``span`` | failure of type X).

    Returns one entry per trigger category, each against the common
    any-failure baseline.
    """
    return _by_trigger(systems, span, triggers, Scope.NODE)


def _by_trigger(
    systems: Sequence[SystemDataset],
    span: Span,
    triggers: Sequence[Category] | None,
    scope: Scope,
) -> list[TriggerResult]:
    """Shared Figure 1(a)/2(a)/3 engine: one batched row per trigger."""
    trigger_list = list(triggers if triggers is not None else all_categories())
    base = pooled_baseline(systems, span)
    grid = _pooled_conditional_grid(
        systems,
        [fail_kind(category=trig) for trig in trigger_list],
        [_ANY],
        [span],
        scope,
    )
    return [
        TriggerResult(trig, compare(grid[i][0][0], base, span))
        for i, trig in enumerate(trigger_list)
    ]


@dataclass(frozen=True, slots=True)
class TargetResult:
    """One Figure-1(b)-style bar group for target type X.

    Attributes:
        target: the follow-up failure type the bars are about.
        after_any: P(type-X failure in window after ANY failure).
        after_same: P(type-X failure in window after a type-X failure).
        random: the type-X random-window baseline.
    """

    target: Category | Subtype
    after_any: WindowComparison
    after_same: WindowComparison

    @property
    def random(self):
        """The baseline estimate (shared by both comparisons)."""
        return self.after_any.baseline


def same_node_by_target(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    targets: Sequence[Category | Subtype] | None = None,
    scope: Scope = Scope.NODE,
) -> list[TargetResult]:
    """Figure 1(b) (NODE scope) / Figure 2(b) (RACK scope).

    For each target type X: probability of a type-X failure in the window
    following (a) any failure, (b) a failure of the same type, against
    the type-X random-window baseline.  The paper's headline: same-type
    triggers dominate (up to ~700X for ENV/NET in group-1 at node scope,
    ~170X for ENV at rack scope).
    """
    if targets is None:
        targets = [
            *all_categories(),
            HardwareSubtype.MEMORY,
            HardwareSubtype.CPU,
        ]
    target_list = list(targets)
    kinds = [split_kind(target) for target in target_list]
    bases = _pooled_baseline_grid(systems, kinds, [span])
    # One ANY-trigger row covers every after-any cell; the after-same
    # cells are the grid diagonal, queried one row at a time so only the
    # diagonal is computed.
    any_grid = _pooled_conditional_grid(systems, [_ANY], kinds, [span], scope)
    out = []
    for j, target in enumerate(target_list):
        after_same = _pooled_conditional_grid(
            systems, [kinds[j]], [kinds[j]], [span], scope
        )[0][0][0]
        out.append(
            TargetResult(
                target=target,
                after_any=compare(any_grid[0][j][0], bases[j][0], span),
                after_same=compare(after_same, bases[j][0], span),
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class PairwiseCell:
    """One p(x, y) cell of the Section III-A.3 pairwise analysis."""

    trigger: Category
    target: Category
    comparison: WindowComparison


def pairwise_matrix(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    scope: Scope = Scope.NODE,
) -> list[PairwiseCell]:
    """All pairwise p(x, y): P(type-Y failure in window after type-X).

    Each cell compares against the type-Y random-window baseline.  The
    paper uses this to spot the ENV/NET/SW cross-correlation triangle.
    """
    categories = list(all_categories())
    kinds = [fail_kind(category=cat) for cat in categories]
    bases = _pooled_baseline_grid(systems, kinds, [span])
    grid = _pooled_conditional_grid(systems, kinds, kinds, [span], scope)
    cells = []
    for j, target in enumerate(categories):
        for i, trigger in enumerate(categories):
            cells.append(
                PairwiseCell(
                    trigger, target, compare(grid[i][j][0], bases[j][0], span)
                )
            )
    return cells


def hardware_detail(
    systems: Sequence[SystemDataset],
    span: Span = Span.WEEK,
    scope: Scope = Scope.NODE,
) -> list[TargetResult]:
    """Section III-A.4: memory and CPU same-subtype correlations.

    The paper: weekly memory-failure probability after a memory failure
    is 20.23% vs 0.21% random in group-1 (~100X); group-2 goes from 4.2%
    to 12.6%.
    """
    return same_node_by_target(
        systems,
        span,
        targets=[HardwareSubtype.MEMORY, HardwareSubtype.CPU],
        scope=scope,
    )


def same_rack_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-B: P(another node in the rack fails within the window).

    Paper: weekly 4.6% vs baseline 2.04% (>2X); daily 1.2% vs 0.31% (~3X).
    """
    cond = pooled_conditional(systems, span, scope=Scope.RACK)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_rack_by_trigger(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TriggerResult]:
    """Figure 2(a): rack-scope follow-up probability by trigger type."""
    return _by_trigger(systems, span, None, Scope.RACK)


def same_rack_by_target(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TargetResult]:
    """Figure 2(b): rack-scope same-type vs any-type target probabilities."""
    return same_node_by_target(systems, span, scope=Scope.RACK)


def same_system_any(
    systems: Sequence[SystemDataset], span: Span
) -> WindowComparison:
    """Section III-C: P(another node in the system fails within the window).

    Paper: weekly 2.04% -> 2.68% (group-1), 22.5% -> 35.3% (group-2);
    neither significant under the two-sample test.
    """
    cond = pooled_conditional(systems, span, scope=Scope.SYSTEM)
    base = pooled_baseline(systems, span)
    return compare(cond, base, span)


def same_system_by_trigger(
    systems: Sequence[SystemDataset], span: Span = Span.WEEK
) -> list[TriggerResult]:
    """Figure 3: system-scope follow-up probability by trigger type.

    Paper: software (1.27X, significant), hardware and human failures
    raise follow-up probability in group-1; network dominates group-2
    (3.69X).
    """
    return _by_trigger(systems, span, None, Scope.SYSTEM)
