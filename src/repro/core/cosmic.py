"""Section IX: external factors -- cosmic radiation.

Correlates monthly average neutron counts (from the neutron-monitor
series) with monthly DRAM- and CPU-failure probabilities per system
(Figure 14).  The paper's finding: no association for DRAM failures
(ECC masks soft errors; outage-causing DRAM errors are hard errors), a
mild positive association for CPU failures in systems 2, 18 and 19.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..records.dataset import Archive, SystemDataset
from ..records.environment import monthly_neutron_averages
from ..records.taxonomy import HardwareSubtype
from ..records.timeutil import Span, count_windows, window_index
from ..stats.correlation import CorrelationError, CorrelationResult, pearson, spearman


class CosmicAnalysisError(ValueError):
    """Raised when the cosmic-ray analysis cannot run."""


@dataclass(frozen=True, slots=True)
class NeutronCorrelation:
    """Figure 14 data for one system and one failure subtype.

    Attributes:
        system_id: the system.
        subtype: MEMORY (the paper's "DRAM") or CPU.
        monthly_counts: average neutron counts-per-minute per month
            (months without samples dropped).
        monthly_probability: P(a node has a subtype failure) per month.
        pearson: correlation of probability vs counts.
        spearman: rank-correlation companion.
    """

    system_id: int
    subtype: HardwareSubtype
    monthly_counts: np.ndarray
    monthly_probability: np.ndarray
    pearson: CorrelationResult | None
    spearman: CorrelationResult | None

    @property
    def associated(self) -> bool:
        """True when the Pearson correlation is positive and significant."""
        return (
            self.pearson is not None
            and self.pearson.significant
            and self.pearson.coefficient > 0
        )


def monthly_failure_probability(
    ds: SystemDataset, subtype: HardwareSubtype
) -> np.ndarray:
    """P(a random node fails with ``subtype``) for each tiled month."""
    n_months = count_windows(ds.period, Span.MONTH)
    times, nodes = ds.failure_table.select(subtype=subtype)
    idx = window_index(times, ds.period, Span.MONTH)
    valid = idx >= 0
    keys = nodes[valid] * np.int64(n_months) + idx[valid]
    probs = np.zeros(n_months)
    if keys.size:
        uniq = np.unique(keys)
        months = uniq % n_months
        np.add.at(probs, months, 1.0)
    return probs / ds.num_nodes


def neutron_correlation(
    archive: Archive,
    ds: SystemDataset,
    subtype: HardwareSubtype,
) -> NeutronCorrelation:
    """Figure 14 for one system/subtype: monthly probability vs flux."""
    if not archive.neutron_series:
        raise CosmicAnalysisError("the archive carries no neutron series")
    flux = monthly_neutron_averages(archive.neutron_series, ds.period)
    prob = monthly_failure_probability(ds, subtype)
    keep = ~np.isnan(flux)
    flux, prob = flux[keep], prob[keep]
    if flux.size < 6:
        raise CosmicAnalysisError(
            "need at least 6 months with neutron samples to correlate"
        )
    try:
        r = pearson(flux, prob)
    except CorrelationError:
        r = None
    try:
        rho = spearman(flux, prob)
    except CorrelationError:
        rho = None
    return NeutronCorrelation(
        system_id=ds.system_id,
        subtype=subtype,
        monthly_counts=flux,
        monthly_probability=prob,
        pearson=r,
        spearman=rho,
    )


def cosmic_ray_analysis(
    archive: Archive,
    system_ids: Sequence[int] | None = None,
) -> list[NeutronCorrelation]:
    """The full Section IX analysis: DRAM and CPU, per chosen system.

    Defaults to every archive system; the paper uses systems 2, 18, 19
    and 20 (longest-lived / largest).
    """
    ids = list(system_ids) if system_ids is not None else list(archive.system_ids)
    out = []
    for sid in ids:
        ds = archive[sid]
        for subtype in (HardwareSubtype.MEMORY, HardwareSubtype.CPU):
            out.append(neutron_correlation(archive, ds, subtype))
    return out
