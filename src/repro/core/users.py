"""Section VI: are some users more prone to node failures than others?

For the 50 heaviest users (by processor-days), computes node-caused job
failures per processor-day (Figure 8) and runs the paper's formal test:
a saturated Poisson model (per-user rates) against a common-rate model,
compared by ANOVA (likelihood-ratio test), significant at 99%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.dataset import SystemDataset
from ..records.usage import UsageError, UserUsage
from ..stats.anova import AnovaResult, saturated_vs_common_rate
from .cache import get_cache


class UserAnalysisError(ValueError):
    """Raised when the per-user analysis cannot run."""


@dataclass(frozen=True, slots=True)
class UserFailureResult:
    """Figure 8 for one system.

    Attributes:
        system_id: the system.
        users: the heaviest users analysed, ordered by processor-days
            (each carries its failures-per-processor-day rate).
        anova: saturated-vs-common-rate Poisson ANOVA over those users.
        total_users: number of distinct users in the full job log.
    """

    system_id: int
    users: tuple[UserUsage, ...]
    anova: AnovaResult
    total_users: int

    @property
    def rates(self) -> np.ndarray:
        """Failures per processor-day per analysed user (figure y-axis)."""
        return np.array([u.failures_per_processor_day for u in self.users])

    @property
    def rate_spread(self) -> float:
        """Max/min positive rate ratio -- a simple skew summary."""
        rates = self.rates[self.rates > 0]
        if rates.size < 2:
            return float("nan")
        return float(rates.max() / rates.min())


def user_failure_rates(ds: SystemDataset, top_k: int = 50) -> UserFailureResult:
    """Run the Figure 8 / Section VI analysis on one system.

    Only job failures *caused by node failures* count (the job records'
    ``failed_due_to_node`` flag) -- application crashes are excluded, so
    the skew cannot be blamed on users' coding ability.

    Raises :class:`UserAnalysisError` when the system has no job log or
    no analysable users.
    """
    if not ds.has_usage:
        raise UserAnalysisError(
            f"system {ds.system_id} has no job log; Section VI needs one"
        )
    if top_k < 1:
        raise UsageError(f"k must be >= 1, got {top_k}")
    summaries = get_cache(ds).user_usage()
    total_users = len(summaries)
    users = tuple(summaries[:top_k])
    usable = [u for u in users if u.processor_days > 0]
    if len(usable) < 2:
        raise UserAnalysisError(
            "need at least two users with positive processor-days"
        )
    counts = np.array([u.node_failed_jobs for u in usable], dtype=float)
    exposures = np.array([u.processor_days for u in usable])
    if counts.sum() == 0:
        raise UserAnalysisError(
            "no node-caused job failures among the analysed users"
        )
    anova = saturated_vs_common_rate(counts, exposures)
    return UserFailureResult(
        system_id=ds.system_id,
        users=tuple(usable),
        anova=anova,
        total_users=total_users,
    )
