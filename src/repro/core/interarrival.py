"""Classical failure-process modeling: inter-arrival times.

The paper's introduction contrasts its question-driven approach with
prior work that "statistically model[s] the empirical distribution of
the inter-arrival time between failures or analyz[es] the
auto-correlation function of the observed sequence of failures".  This
module supplies exactly that companion analysis so both lenses are
available:

* per-system (and per-node) inter-arrival samples;
* ML fits of the four standard reliability distributions with AIC
  selection and KS goodness of fit (:mod:`repro.stats.distfit`);
* the hazard-rate verdict (Weibull shape < 1 = failures cluster --
  which must agree with the paper's Section III correlations);
* the autocorrelation function of the daily failure-count series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.dataset import SystemDataset
from ..stats.correlation import CorrelationError, autocorrelation
from ..stats.distfit import DistFitError, DistributionFit, fit_all


class InterArrivalError(ValueError):
    """Raised when a system has too few failures to model."""


def interarrival_times(
    ds: SystemDataset, node_id: int | None = None
) -> np.ndarray:
    """Inter-arrival times (days) between consecutive failures.

    Args:
        ds: the system.
        node_id: restrict to one node's failures (None = system-wide).

    Simultaneous records (identical timestamps, e.g. one outage hitting
    many nodes) produce zero gaps, which the distribution fits cannot
    accept; zero gaps are dropped and their count is meaningful data for
    the caller (use :func:`simultaneity_share`).
    """
    table = ds.failure_table
    times = table.times if node_id is None else table.times[
        table.node_ids == node_id
    ]
    if times.size < 2:
        raise InterArrivalError(
            "need at least two failures to compute inter-arrival times"
        )
    gaps = np.diff(np.sort(times))
    return gaps[gaps > 0]


def simultaneity_share(ds: SystemDataset) -> float:
    """Fraction of consecutive failure gaps that are exactly zero.

    High values indicate correlated multi-node events (power outages)
    rather than log noise.
    """
    times = ds.failure_table.times
    if times.size < 2:
        raise InterArrivalError("need at least two failures")
    gaps = np.diff(np.sort(times))
    return float((gaps == 0).mean())


@dataclass(frozen=True, slots=True)
class InterArrivalModel:
    """Fitted inter-arrival model for one system.

    Attributes:
        system_id: the system.
        n_gaps: number of positive inter-arrival gaps used.
        fits: every family's fit, ordered by ascending AIC.
        best: the AIC-best fit.
        mean_gap_days: sample mean gap (the system-wide MTBF in days).
        clustered: True when the fitted Weibull shape is below 1
            (decreasing hazard) -- the classical signature of failure
            clustering, which must agree with Section III.
        daily_acf: autocorrelation of the daily failure-count series up
            to 14 lags (None when the series is degenerate).
    """

    system_id: int
    n_gaps: int
    fits: tuple[DistributionFit, ...]
    best: DistributionFit
    mean_gap_days: float
    clustered: bool
    daily_acf: np.ndarray | None

    def fit_for(self, family: str) -> DistributionFit:
        """Look up one family's fit."""
        for f in self.fits:
            if f.family == family:
                return f
        raise InterArrivalError(f"no fit for family {family!r}")


def fit_interarrival_model(
    ds: SystemDataset, node_id: int | None = None
) -> InterArrivalModel:
    """Fit the classical inter-arrival model for one system (or node)."""
    gaps = interarrival_times(ds, node_id=node_id)
    try:
        fits = fit_all(gaps)
    except DistFitError as exc:
        raise InterArrivalError(str(exc)) from exc
    best = fits[0]
    # Clustering verdict: the reliability-community convention is the
    # Weibull shape parameter (< 1 = decreasing hazard = clustering),
    # regardless of which family wins the AIC race -- e.g. heavily bursty
    # data is often AIC-best fitted by a wide lognormal, whose hazard is
    # non-monotone but whose process is clearly clustered.
    weibull = next(f for f in fits if f.family == "weibull")
    clustered = bool(weibull.decreasing_hazard)
    acf = None
    if node_id is None:
        days = np.floor(ds.failure_table.times).astype(int)
        n_days = int(np.ceil(ds.period.length))
        series = np.bincount(days, minlength=n_days).astype(float)
        try:
            acf = autocorrelation(series, min(14, series.size - 1))
        except CorrelationError:
            acf = None
    return InterArrivalModel(
        system_id=ds.system_id,
        n_gaps=int(gaps.size),
        fits=tuple(fits),
        best=best,
        mean_gap_days=float(gaps.mean()),
        clustered=clustered,
        daily_acf=acf,
    )


def render_interarrival_report(model: InterArrivalModel) -> str:
    """Text table of the fits, like prior-work papers report them."""
    lines = [
        f"system {model.system_id}: {model.n_gaps} inter-arrival gaps, "
        f"mean {model.mean_gap_days:.3f} days",
        f"{'family':<12s} {'AIC':>10s} {'KS':>7s} {'KS p':>8s} "
        f"{'shape':>7s} {'hazard':>11s}",
    ]
    for f in model.fits:
        shape = "-" if f.shape is None else f"{f.shape:.3f}"
        if f.decreasing_hazard is None:
            hazard = "non-monot."
        elif f.decreasing_hazard:
            hazard = "decreasing"
        else:
            hazard = "flat/incr."
        lines.append(
            f"{f.family:<12s} {f.aic:>10.1f} {f.ks_statistic:>7.3f} "
            f"{f.ks_p_value:>8.3f} {shape:>7s} {hazard:>11s}"
        )
    lines.append(
        "verdict: failures "
        + ("CLUSTER (decreasing hazard)" if model.clustered else
           "do not show decreasing hazard")
    )
    if model.daily_acf is not None and model.daily_acf.size > 1:
        lines.append(
            "daily-count autocorrelation (lags 1..7): "
            + " ".join(f"{v:+.2f}" for v in model.daily_acf[1:8])
        )
    return "\n".join(lines)
