"""Section VIII: how does temperature affect failures?

Two complementary analyses:

* **Regressions (VIII-A/B)** -- Poisson and negative-binomial models of
  per-node hardware-failure counts as functions of the node's average /
  maximum / variance of temperature (:func:`temperature_regressions`).
  The paper (agreeing with [3]) finds none of them significant, for
  hardware failures overall and for CPU/DRAM failures separately.
* **Fan/chiller impact (VIII-B, Figure 13)** -- window probabilities of
  hardware failures after fan and chiller failures
  (:func:`fan_chiller_impact`, :func:`thermal_component_impact`): fans
  ~40X on the following day, chillers 6-9X; per component, everything
  except CPUs reacts, with MSC boards/midplanes >100X.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..records.dataset import SystemDataset
from ..records.taxonomy import (
    Category,
    EnvironmentSubtype,
    HardwareSubtype,
    Subtype,
)
from ..records.timeutil import ALL_SPANS, Span
from ..stats.glm import GLMResult, fit_negative_binomial, fit_poisson
from .cache import get_cache
from .power import PowerImpactCell, _impact_cells


class TemperatureAnalysisError(ValueError):
    """Raised when a system lacks the data a temperature analysis needs."""


#: The two temperature-excursion triggers of Figure 13.
THERMAL_TRIGGERS: tuple[Subtype, ...] = (
    EnvironmentSubtype.CHILLER,
    HardwareSubtype.FAN,
)

#: Hardware components reported in Figure 13 (right).
FIG13_COMPONENTS: tuple[HardwareSubtype, ...] = (
    HardwareSubtype.POWER_SUPPLY,
    HardwareSubtype.MEMORY,
    HardwareSubtype.NODE_BOARD,
    HardwareSubtype.FAN,
    HardwareSubtype.CPU,
    HardwareSubtype.MSC_BOARD,
    HardwareSubtype.MIDPLANE,
)

_TEMP_PREDICTORS = ("avg_temp", "max_temp", "temp_var")


@dataclass(frozen=True, slots=True)
class TemperatureRegressionResult:
    """Section VIII-A/B regressions for one target failure type.

    Attributes:
        system_id: the system (the paper only has data for system 20).
        target: the response -- hardware failures overall, or a specific
            component (CPU / MEMORY).
        poisson: fitted Poisson model over avg/max/var temperature.
        negbin: fitted negative-binomial model over the same design.
        any_significant: True if any temperature predictor is significant
            at 1% in either model (the paper's answer: no).
    """

    system_id: int
    target: Category | Subtype
    poisson: GLMResult
    negbin: GLMResult

    @property
    def any_significant(self) -> bool:
        """True if any temperature predictor reaches 1% in either model.

        Note the Poisson model alone can flag predictors spuriously on
        overdispersed per-node counts (node 0 is a huge outlier) -- the
        paper sees exactly this with ``max_temp`` in its Table II, and
        the significance evaporates under the negative binomial.  Use
        :attr:`robustly_significant` for the overdispersion-safe answer.
        """
        for model in (self.poisson, self.negbin):
            for name in _TEMP_PREDICTORS:
                if model.coefficient(name).significant(alpha=0.01):
                    return True
        return False

    @property
    def robustly_significant(self) -> bool:
        """True if a temperature predictor is significant in BOTH models.

        This is the criterion the paper effectively applies when it
        concludes temperature is insignificant: an effect must survive
        the overdispersion-robust negative-binomial fit.
        """
        for name in _TEMP_PREDICTORS:
            if self.poisson.coefficient(name).significant(
                alpha=0.01
            ) and self.negbin.coefficient(name).significant(alpha=0.01):
                return True
        return False


def _temperature_design(
    ds: SystemDataset,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Per-node (avg, max, var) design matrix; drops unsampled nodes."""
    summaries = get_cache(ds).temperature_summaries()
    rows = []
    kept_nodes = []
    for s in summaries:
        if s.num_readings == 0:
            continue
        rows.append([s.avg_temp, s.max_temp, s.temp_var])
        kept_nodes.append(s.node_id)
    if len(rows) < 10:
        raise TemperatureAnalysisError(
            "need temperature readings on at least 10 nodes to regress"
        )
    X = np.asarray(rows, dtype=float)
    # Center predictors: keeps the intercept interpretable and the IRLS
    # well-conditioned without changing slopes or p-values.
    X = X - X.mean(axis=0)
    return X, np.asarray(kept_nodes, dtype=np.int64), kept_nodes


def temperature_regressions(
    ds: SystemDataset,
    target: Category | Subtype = Category.HARDWARE,
) -> TemperatureRegressionResult:
    """Fit the Section VIII Poisson and NB temperature regressions.

    Args:
        ds: a system with temperature readings (LANL: system 20).
        target: response failure type -- ``Category.HARDWARE`` for the
            headline analysis, ``HardwareSubtype.CPU`` / ``MEMORY`` for
            the per-component repeats.
    """
    if not ds.has_temperature:
        raise TemperatureAnalysisError(
            f"system {ds.system_id} has no temperature readings"
        )
    X, node_ids, _ = _temperature_design(ds)
    t_cat = target if isinstance(target, Category) else None
    t_sub = None if isinstance(target, Category) else target
    _, fail_nodes = ds.failure_table.select(category=t_cat, subtype=t_sub)
    counts = np.zeros(ds.num_nodes, dtype=np.int64)
    np.add.at(counts, fail_nodes, 1)
    y = counts[node_ids]
    names = list(_TEMP_PREDICTORS)
    return TemperatureRegressionResult(
        system_id=ds.system_id,
        target=target,
        poisson=fit_poisson(X, y, names=names),
        negbin=fit_negative_binomial(X, y, names=names),
    )


def fan_chiller_impact(
    systems: Sequence[SystemDataset],
    spans: Sequence[Span] = ALL_SPANS,
) -> list[PowerImpactCell]:
    """Figure 13 (left): P(hardware failure after fan/chiller failures).

    The paper: fans ~40X on the following day; chillers 6-9X across
    timespans.
    """
    return _impact_cells(systems, THERMAL_TRIGGERS, [Category.HARDWARE], spans)


def thermal_component_impact(
    systems: Sequence[SystemDataset],
    components: Sequence[HardwareSubtype] = FIG13_COMPONENTS,
) -> list[PowerImpactCell]:
    """Figure 13 (right): per-component month probabilities after
    fan/chiller failures.

    The paper: every component except CPUs reacts to fan failures
    (memory/node boards/power supplies 10-20X, fans ~120X, MSC boards and
    midplanes also large); chillers move only memory (5.3X) and node
    boards (10.8X).
    """
    return _impact_cells(
        systems, THERMAL_TRIGGERS, list(components), [Span.MONTH]
    )
