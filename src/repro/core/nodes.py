"""Section IV: do some nodes in a system fail differently from others?

* **IV-A / Figure 4** -- per-node failure counts and the chi-square test
  that nodes do *not* fail at equal rates (99% confidence, with and
  without the most failure-prone node);
* **IV-B / Figure 5** -- root-cause breakdown of failure-prone nodes vs
  the rest of the system;
* **IV-B / Figure 6** -- per-failure-type day/week/month probabilities in
  the prone node vs the rest, with factor increases and per-type
  chi-square tests;
* **IV-C** -- the machine-room-area hypothesis: grouping failures by
  floor location and testing for area effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..records.dataset import SystemDataset
from ..records.taxonomy import Category, Subtype, all_categories
from ..records.timeutil import ALL_SPANS, Span
from ..stats.contingency import (
    ChiSquareResult,
    PermutationTestResult,
    equal_rates_test,
    grouping_permutation_test,
)
from ..stats.proportion import TwoSampleResult, two_sample_z_test
from .cache import get_cache, split_kind
from .windows import Counts, compare


class NodeAnalysisError(ValueError):
    """Raised on invalid node-analysis inputs."""


@dataclass(frozen=True, slots=True)
class FailureCountResult:
    """Figure 4 for one system: per-node failure counts and skew tests.

    Attributes:
        system_id: the system.
        counts: failures per node (index = node id).
        prone_node: node with the most failures.
        prone_factor: prone node's count over the mean count.
        equal_rates: chi-square test of "all nodes fail at equal rates".
        equal_rates_without_prone: the same test with the prone node
            removed (the paper still rejects it).
    """

    system_id: int
    counts: np.ndarray
    prone_node: int
    prone_factor: float
    equal_rates: ChiSquareResult
    equal_rates_without_prone: ChiSquareResult | None


def failures_per_node(ds: SystemDataset) -> FailureCountResult:
    """Figure 4 / Section IV-A for one system.

    The paper's systems 18/19/20 all have node 0 as the extreme outlier
    (19X-30X the average node's count), and the equal-rates hypothesis is
    rejected even after dropping it.
    """
    counts = ds.failure_counts_per_node()
    if counts.sum() == 0:
        raise NodeAnalysisError(
            f"system {ds.system_id} has no failures; Figure 4 is undefined"
        )
    prone = int(counts.argmax())
    mean = float(counts.mean())
    test = equal_rates_test(counts)
    without = None
    if ds.num_nodes > 2:
        rest = np.delete(counts, prone)
        if rest.sum() > 0:
            without = equal_rates_test(rest)
    return FailureCountResult(
        system_id=ds.system_id,
        counts=counts,
        prone_node=prone,
        prone_factor=float(counts[prone]) / mean if mean > 0 else float("nan"),
        equal_rates=test,
        equal_rates_without_prone=without,
    )


@dataclass(frozen=True, slots=True)
class BreakdownComparison:
    """Figure 5 for one system: root-cause shares, prone node vs rest.

    Attributes:
        system_id: the system.
        prone_node: the failure-prone node compared against the rest.
        prone_shares: fraction of the prone node's failures per category.
        rest_shares: fraction of the remaining nodes' failures per
            category.
    """

    system_id: int
    prone_node: int
    prone_shares: Mapping[Category, float]
    rest_shares: Mapping[Category, float]

    def dominant(self, prone: bool) -> Category:
        """The dominant failure category of either population."""
        shares = self.prone_shares if prone else self.rest_shares
        return max(shares, key=lambda c: shares[c])


def breakdown_comparison(
    ds: SystemDataset, prone_node: int | None = None
) -> BreakdownComparison:
    """Figure 5: compare root-cause breakdowns, prone node vs the rest.

    The paper's headline: in the prone nodes the dominant failure mode
    shifts from hardware to software, with environment and network shares
    also elevated.
    """
    if prone_node is None:
        prone_node = failures_per_node(ds).prone_node
    if not (0 <= prone_node < ds.num_nodes):
        raise NodeAnalysisError(f"prone_node {prone_node} out of range")
    table = ds.failure_table
    prone_mask = table.node_ids == prone_node
    prone_total = int(prone_mask.sum())
    rest_total = len(table) - prone_total
    if prone_total == 0 or rest_total == 0:
        raise NodeAnalysisError(
            "both the prone node and the rest must have failures to compare"
        )
    prone_shares = {}
    rest_shares = {}
    for cat in all_categories():
        code = table.category_code(cat)
        cat_mask = table.category_codes == code
        prone_shares[cat] = float((cat_mask & prone_mask).sum()) / prone_total
        rest_shares[cat] = float((cat_mask & ~prone_mask).sum()) / rest_total
    return BreakdownComparison(
        system_id=ds.system_id,
        prone_node=prone_node,
        prone_shares=prone_shares,
        rest_shares=rest_shares,
    )


@dataclass(frozen=True, slots=True)
class ProneTypeCell:
    """One Figure 6 bar pair: P(type failure in a window), prone vs rest.

    Attributes:
        system_id: the system.
        kind: failure category or hardware subtype analysed.
        span: window length (day/week/month).
        prone: probability estimate for the prone node.
        rest: probability estimate for the remaining nodes.
        factor: prone / rest probability ratio (the figure annotation).
        test: two-sample test of prone vs rest probabilities.
    """

    system_id: int
    kind: Category | Subtype
    span: Span
    prone: Counts
    rest: Counts
    factor: float
    test: TwoSampleResult


def prone_type_probabilities(
    ds: SystemDataset,
    prone_node: int | None = None,
    kinds: Sequence[Category | Subtype] | None = None,
    spans: Sequence[Span] = ALL_SPANS,
) -> list[ProneTypeCell]:
    """Figure 6: per-type window probabilities, prone node vs the rest.

    For each failure type and each span, computes the probability that
    the prone node (resp. an average remaining node) experiences a
    failure of that type in a random tiled window, with the factor
    increase and a two-sample test.

    The paper observes increases for every type, strongest for ENV
    (~2000X) and NET (500-1000X), clear for SW (36-118X), modest for HW
    (5-10X) and insignificant only for human errors.
    """
    if prone_node is None:
        prone_node = failures_per_node(ds).prone_node
    if kinds is None:
        kinds = list(all_categories())
    rest_nodes = np.array(
        [n for n in range(ds.num_nodes) if n != prone_node], dtype=np.int64
    )
    if rest_nodes.size == 0:
        raise NodeAnalysisError("need at least two nodes to compare")
    cache = get_cache(ds)
    kind_keys = [split_kind(kind) for kind in kinds]
    span_list = list(spans)
    prone_grid = cache.baseline_grid(
        kind_keys,
        span_list,
        node_subset=np.array([prone_node]),
        subset_key=("prone", prone_node),
    )
    rest_grid = cache.baseline_grid(
        kind_keys,
        span_list,
        node_subset=rest_nodes,
        subset_key=("rest", prone_node),
    )
    cells = []
    for i, kind in enumerate(kinds):
        for k, span in enumerate(span_list):
            prone_counts = prone_grid[i][k]
            rest_counts = rest_grid[i][k]
            p_prone = prone_counts.estimate().value
            p_rest = rest_counts.estimate().value
            factor = p_prone / p_rest if p_rest > 0 else float("nan")
            test = two_sample_z_test(
                prone_counts.successes,
                prone_counts.trials,
                rest_counts.successes,
                rest_counts.trials,
            )
            cells.append(
                ProneTypeCell(
                    system_id=ds.system_id,
                    kind=kind,
                    span=span,
                    prone=prone_counts,
                    rest=rest_counts,
                    factor=factor,
                    test=test,
                )
            )
    return cells


@dataclass(frozen=True, slots=True)
class RoomAreaResult:
    """Section IV-C: failures grouped by machine-room floor area.

    Attributes:
        system_id: the system.
        area_counts: failures per floor cell ``(x, y)``.
        area_nodes: node count per floor cell.
        test: permutation test of "the spatial arrangement of per-node
            counts over areas is random".  Per-node heterogeneity alone
            (prone nodes, weak PSUs) must NOT trigger it -- only a real
            location pattern does; the paper finds none.
    """

    system_id: int
    area_counts: Mapping[tuple[int, int], int]
    area_nodes: Mapping[tuple[int, int], int]
    test: PermutationTestResult


def room_area_analysis(
    ds: SystemDataset, exclude_prone: bool = True
) -> RoomAreaResult:
    """Test whether some machine-room areas see more failures than others.

    Uses the rack floor coordinates from the machine layout; expected
    counts are proportional to the number of nodes in each area.

    Args:
        ds: a system with a machine layout.
        exclude_prone: drop the single most failure-prone node before
            testing (default True).  The paper's Section IV-C question is
            whether *areas* are failure-prone beyond the known prone
            nodes; leaving node 0 in simply rediscovers node 0's cell.
    """
    if ds.layout is None:
        raise NodeAnalysisError(
            f"system {ds.system_id} has no machine layout; the room-area "
            "analysis needs one"
        )
    areas = ds.layout.room_areas()
    if len(areas) < 2:
        raise NodeAnalysisError("need at least two floor areas to compare")
    per_node = ds.failure_counts_per_node().astype(float)
    skip = {int(per_node.argmax())} if exclude_prone else set()
    area_counts = {}
    area_nodes = {}
    for cell, nodes in areas.items():
        kept = [n for n in nodes if n not in skip]
        if not kept:
            continue
        area_counts[cell] = int(per_node[kept].sum())
        area_nodes[cell] = len(kept)
    if len(area_counts) < 2:
        raise NodeAnalysisError("need at least two floor areas to compare")
    node_counts = []
    node_groups = []
    for cell, nodes in areas.items():
        for n in nodes:
            if n in skip:
                continue
            node_counts.append(per_node[n])
            node_groups.append(cell)
    test = grouping_permutation_test(
        np.asarray(node_counts),
        np.asarray([f"{x},{y}" for x, y in node_groups]),
        rng=np.random.default_rng(0),
    )
    return RoomAreaResult(
        system_id=ds.system_id,
        area_counts=area_counts,
        area_nodes=area_nodes,
        test=test,
    )


def per_type_equal_rates(
    ds: SystemDataset, kinds: Sequence[Category] | None = None
) -> dict[Category, ChiSquareResult | None]:
    """Section IV-B's formal test, per failure type.

    Chi-square equal-rates test across nodes for each category; the paper
    rejects equal rates for every type except human errors.  Types with
    no failures map to None.
    """
    table = ds.failure_table
    out: dict[Category, ChiSquareResult | None] = {}
    for cat in kinds or all_categories():
        counts = np.zeros(ds.num_nodes, dtype=np.int64)
        _, nodes = table.select(category=cat)
        np.add.at(counts, nodes, 1)
        out[cat] = equal_rates_test(counts) if counts.sum() > 0 else None
    return out
