"""Section V: what is the effect of usage on a node's reliability?

Correlates per-node usage metrics -- average utilization and total job
count, derived from the job log -- with per-node failure counts
(Figure 7), including the paper's key robustness check: the strong
Pearson correlation (0.465 on system 8, 0.12 on system 20) is driven by
node 0, and vanishes when node 0 is removed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.dataset import SystemDataset
from ..records.usage import NodeUsage
from ..stats.correlation import CorrelationError, CorrelationResult, pearson, spearman
from .cache import get_cache


class UsageAnalysisError(ValueError):
    """Raised when a system lacks the data the usage analysis needs."""


@dataclass(frozen=True, slots=True)
class UsageCorrelationResult:
    """Figure 7 for one system.

    Attributes:
        system_id: the system.
        node_ids: node ids (axis for the arrays below).
        failures: per-node failure counts.
        utilization: per-node average utilization in [0, 1].
        num_jobs: per-node job counts.
        jobs_pearson: Pearson r of (num_jobs, failures), all nodes.
        jobs_pearson_without_prone: same with the most failure-prone
            node removed (the paper's check that node 0 drives it).
        util_pearson: Pearson r of (utilization, failures), all nodes.
        util_pearson_without_prone: same without the prone node.
        jobs_spearman: rank correlation of (num_jobs, failures) -- a
            robustness companion not in the paper.
        prone_node: the node excluded in the "without" variants.
    """

    system_id: int
    node_ids: np.ndarray
    failures: np.ndarray
    utilization: np.ndarray
    num_jobs: np.ndarray
    jobs_pearson: CorrelationResult
    jobs_pearson_without_prone: CorrelationResult | None
    util_pearson: CorrelationResult
    util_pearson_without_prone: CorrelationResult | None
    jobs_spearman: CorrelationResult
    prone_node: int


def _drop(arr: np.ndarray, idx: int) -> np.ndarray:
    return np.delete(arr, idx)


def _safe_pearson(x: np.ndarray, y: np.ndarray) -> CorrelationResult | None:
    try:
        return pearson(x, y)
    except CorrelationError:
        return None


def usage_failure_correlation(ds: SystemDataset) -> UsageCorrelationResult:
    """Run the Figure 7 analysis on one system with a job log.

    Raises :class:`UsageAnalysisError` when the system has no usage data
    (at LANL only systems 8 and 20 have job logs).
    """
    if not ds.has_usage:
        raise UsageAnalysisError(
            f"system {ds.system_id} has no job log; Section V needs one"
        )
    summaries = get_cache(ds).node_usage()
    failures = ds.failure_counts_per_node().astype(float)
    utilization = np.array([s.utilization for s in summaries])
    num_jobs = np.array([s.num_jobs for s in summaries], dtype=float)
    prone = int(failures.argmax())

    jobs_r = pearson(num_jobs, failures)
    util_r = pearson(utilization, failures)
    jobs_rank = spearman(num_jobs, failures)
    jobs_r_wo = util_r_wo = None
    if ds.num_nodes > 3:
        jobs_r_wo = _safe_pearson(_drop(num_jobs, prone), _drop(failures, prone))
        util_r_wo = _safe_pearson(_drop(utilization, prone), _drop(failures, prone))

    return UsageCorrelationResult(
        system_id=ds.system_id,
        node_ids=np.arange(ds.num_nodes),
        failures=failures,
        utilization=utilization,
        num_jobs=num_jobs,
        jobs_pearson=jobs_r,
        jobs_pearson_without_prone=jobs_r_wo,
        util_pearson=util_r,
        util_pearson_without_prone=util_r_wo,
        jobs_spearman=jobs_rank,
        prone_node=prone,
    )


def node_usage(ds: SystemDataset) -> list[NodeUsage]:
    """Per-node usage summaries for a system with a job log."""
    if not ds.has_usage:
        raise UsageAnalysisError(
            f"system {ds.system_id} has no job log; cannot summarize usage"
        )
    return get_cache(ds).node_usage()
