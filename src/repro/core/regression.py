"""Section X: joint regression of node outages on usage, layout, temperature.

Builds Table I's per-node design matrix -- temperature aggregates
(``avg_temp``, ``max_temp``, ``temp_var``, ``num_hightemp``), usage
(``num_jobs``, ``util``) and physical position (``PIR``) -- with the
total outage count as the response, then fits Table II's Poisson model
and Table III's negative-binomial model.  Includes the paper's
robustness reruns: without node 0, and with only the significant
predictors.

At LANL the only system with all data sources is system 20; the module
works for any system carrying jobs + temperatures + layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.dataset import SystemDataset
from ..stats.glm import GLMResult, fit_negative_binomial, fit_poisson
from .cache import get_cache


class RegressionAnalysisError(ValueError):
    """Raised when a system lacks the data the joint regression needs."""


#: Table I predictor names, in table order.
TABLE1_PREDICTORS: tuple[str, ...] = (
    "avg_temp",
    "max_temp",
    "temp_var",
    "num_hightemp",
    "num_jobs",
    "util",
    "PIR",
)


@dataclass(frozen=True, slots=True)
class DesignMatrix:
    """Table I's per-node design.

    Attributes:
        system_id: the system.
        node_ids: node id per row.
        X: predictor matrix, columns ordered as
            :data:`TABLE1_PREDICTORS`.
        y: response -- total outages per node over the period.
        names: predictor names (column labels of ``X``).
    """

    system_id: int
    node_ids: np.ndarray
    X: np.ndarray
    y: np.ndarray
    names: tuple[str, ...] = TABLE1_PREDICTORS

    def without_node(self, node_id: int) -> "DesignMatrix":
        """A copy with one node's row removed (the paper's node-0 rerun)."""
        keep = self.node_ids != node_id
        if keep.all():
            raise RegressionAnalysisError(
                f"node {node_id} is not in the design"
            )
        return DesignMatrix(
            system_id=self.system_id,
            node_ids=self.node_ids[keep],
            X=self.X[keep],
            y=self.y[keep],
            names=self.names,
        )

    def subset(self, names: tuple[str, ...]) -> "DesignMatrix":
        """A copy keeping only the given predictor columns."""
        missing = [n for n in names if n not in self.names]
        if missing:
            raise RegressionAnalysisError(f"unknown predictors {missing}")
        cols = [self.names.index(n) for n in names]
        return DesignMatrix(
            system_id=self.system_id,
            node_ids=self.node_ids,
            X=self.X[:, cols],
            y=self.y,
            names=tuple(names),
        )


def build_design_matrix(ds: SystemDataset) -> DesignMatrix:
    """Assemble Table I's predictors for every node with complete data.

    Nodes without temperature readings are dropped (their aggregates are
    undefined); the paper's system 20 has sensor data for all nodes.
    """
    if not ds.has_usage:
        raise RegressionAnalysisError(
            f"system {ds.system_id} has no job log (num_jobs/util missing)"
        )
    if not ds.has_temperature:
        raise RegressionAnalysisError(
            f"system {ds.system_id} has no temperature data"
        )
    if ds.layout is None:
        raise RegressionAnalysisError(
            f"system {ds.system_id} has no machine layout (PIR missing)"
        )
    cache = get_cache(ds)
    temps = cache.temperature_summaries()
    usage = cache.node_usage()
    failures = ds.failure_counts_per_node()
    rows = []
    node_ids = []
    y = []
    for node in range(ds.num_nodes):
        t = temps[node]
        if t.num_readings == 0:
            continue
        u = usage[node]
        rows.append(
            [
                t.avg_temp,
                t.max_temp,
                t.temp_var,
                float(t.num_hightemp),
                float(u.num_jobs),
                u.utilization * 100.0,  # percent, as in the paper's axes
                float(ds.layout.position_in_rack(node)),
            ]
        )
        node_ids.append(node)
        y.append(int(failures[node]))
    if len(rows) < 15:
        raise RegressionAnalysisError(
            "need at least 15 nodes with complete data to fit 7 predictors"
        )
    return DesignMatrix(
        system_id=ds.system_id,
        node_ids=np.asarray(node_ids, dtype=np.int64),
        X=np.asarray(rows, dtype=float),
        y=np.asarray(y, dtype=np.int64),
    )


@dataclass(frozen=True, slots=True)
class JointRegressionResult:
    """Tables II and III plus the paper's robustness reruns.

    Attributes:
        design: the design matrix used.
        poisson: Table II (Poisson regression).
        negbin: Table III (negative-binomial regression).
        poisson_without_prone: Poisson rerun with the most failure-prone
            node removed (the paper: utilization stays significant).
        significant_only: Poisson rerun with only the predictors that
            were significant at 1% in the full Poisson model (the paper:
            max_temp's significance drops in this rerun).
    """

    design: DesignMatrix
    poisson: GLMResult
    negbin: GLMResult
    poisson_without_prone: GLMResult | None
    significant_only: GLMResult | None

    def significant_predictors(self, alpha: float = 0.01) -> list[str]:
        """Predictors significant in BOTH models (paper: num_jobs, util)."""
        out = []
        for name in self.design.names:
            if self.poisson.coefficient(name).significant(
                alpha
            ) and self.negbin.coefficient(name).significant(alpha):
                out.append(name)
        return out


def fit_joint_regression(ds: SystemDataset) -> JointRegressionResult:
    """Run the full Section X analysis on one system.

    The paper's findings to compare against: ``num_jobs`` (positive) and
    ``util`` (negative) significant in both models at 99%; ``max_temp``
    significant only in the Poisson model and only in the full fit;
    everything else insignificant.
    """
    design = build_design_matrix(ds)
    pois = fit_poisson(design.X, design.y, names=list(design.names))
    nb = fit_negative_binomial(design.X, design.y, names=list(design.names))

    from ..stats.glm import GLMError

    prone = int(design.node_ids[design.y.argmax()])
    pois_wo = None
    try:
        d_wo = design.without_node(prone)
        pois_wo = fit_poisson(d_wo.X, d_wo.y, names=list(d_wo.names))
    except (RegressionAnalysisError, GLMError):
        pois_wo = None

    sig_names = tuple(
        n for n in design.names if pois.coefficient(n).significant(alpha=0.01)
    )
    sig_only = None
    if 0 < len(sig_names) < len(design.names):
        d_sig = design.subset(sig_names)
        sig_only = fit_poisson(d_sig.X, d_sig.y, names=list(d_sig.names))

    return JointRegressionResult(
        design=design,
        poisson=pois,
        negbin=nb,
        poisson_without_prone=pois_wo,
        significant_only=sig_only,
    )


def render_coefficient_table(result: GLMResult) -> str:
    """Render a fitted model as the paper's Table II/III layout."""
    lines = [
        f"{'':>14s} {'Estimate':>10s} {'Std. Error':>11s} "
        f"{'z value':>8s} {'Pr(>|z|)':>9s}"
    ]
    for c in result.coefficients:
        lines.append(
            f"{c.name:>14s} {c.estimate:>10.4f} {c.std_error:>11.4f} "
            f"{c.z_value:>8.2f} {c.p_value:>9.4f}"
        )
    if result.alpha is not None:
        lines.append(f"(NB dispersion alpha = {result.alpha:.4f})")
    return "\n".join(lines)
