"""System lifecycle: failure rate as a function of system age.

An extension beyond the paper (its companion study [12] reports that
failure rates change over a system's life): bins failures by system age,
tests for an infant-mortality phase (elevated rates early in life) and
for long-run trends.  The synthetic archive injects a decaying
burn-in excess (``EffectSizes.infant_mortality_factor``), so the
analysis can be validated against known ground truth like everything
else in the toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.dataset import SystemDataset
from ..stats.correlation import CorrelationError, CorrelationResult, spearman
from ..stats.proportion import TwoSampleResult, two_sample_z_test


class LifecycleAnalysisError(ValueError):
    """Raised when a system's record is too short to bin by age."""


@dataclass(frozen=True, slots=True)
class LifecycleResult:
    """Failure rate over system age for one system.

    Attributes:
        system_id: the system.
        bin_days: width of each age bin.
        bin_starts: left edge of each age bin (days since install).
        rates: failures per node-day in each bin.
        early_vs_rest: two-sample test comparing the node-day failure
            proportion during the early period against the remainder.
        early_days: length of the "early" period tested.
        early_factor: early rate over steady-state rate.
        trend: Spearman correlation of bin rate vs age over the
            post-early bins (negative = improving with age), or None
            when too few bins remain.
    """

    system_id: int
    bin_days: float
    bin_starts: np.ndarray
    rates: np.ndarray
    early_vs_rest: TwoSampleResult
    early_days: float
    early_factor: float
    trend: CorrelationResult | None

    @property
    def infant_mortality_detected(self) -> bool:
        """True when the early period fails significantly more often."""
        return self.early_factor > 1.0 and self.early_vs_rest.significant


def failure_rate_by_age(
    ds: SystemDataset, bin_days: float = 30.0
) -> tuple[np.ndarray, np.ndarray]:
    """Failures per node-day, binned by system age.

    Returns:
        ``(bin_starts, rates)``; trailing partial bins are dropped.
    """
    if bin_days <= 0:
        raise LifecycleAnalysisError("bin_days must be positive")
    n_bins = int(ds.period.length // bin_days)
    if n_bins < 2:
        raise LifecycleAnalysisError(
            "observation period shorter than two age bins"
        )
    ages = ds.failure_table.times - ds.period.start
    idx = (ages // bin_days).astype(int)
    counts = np.bincount(idx[idx < n_bins], minlength=n_bins).astype(float)
    node_days = ds.num_nodes * bin_days
    starts = ds.period.start + bin_days * np.arange(n_bins)
    return starts - ds.period.start, counts / node_days


def lifecycle_analysis(
    ds: SystemDataset,
    bin_days: float = 30.0,
    early_days: float = 90.0,
) -> LifecycleResult:
    """Full lifecycle analysis for one system.

    Args:
        ds: the system.
        bin_days: age-bin width for the rate curve.
        early_days: length of the candidate infant-mortality period.
    """
    if early_days <= 0 or early_days >= ds.period.length:
        raise LifecycleAnalysisError(
            "early_days must be positive and inside the observation period"
        )
    starts, rates = failure_rate_by_age(ds, bin_days)
    ages = ds.failure_table.times - ds.period.start
    early_fail = int((ages < early_days).sum())
    rest_fail = int((ages >= early_days).sum())
    # Node-day trials in each period; "success" = a failure landing in a
    # node-day (counts can exceed trials only in pathological storms; the
    # z-test needs successes <= trials, so cap defensively).
    early_trials = int(ds.num_nodes * early_days)
    rest_trials = int(ds.num_nodes * (ds.period.length - early_days))
    test = two_sample_z_test(
        min(early_fail, early_trials),
        early_trials,
        min(rest_fail, rest_trials),
        rest_trials,
    )
    early_rate = early_fail / early_trials if early_trials else float("nan")
    rest_rate = rest_fail / rest_trials if rest_trials else float("nan")
    factor = early_rate / rest_rate if rest_rate > 0 else float("nan")
    trend = None
    post = starts >= early_days
    if post.sum() >= 5 and np.ptp(rates[post]) > 0:
        try:
            trend = spearman(starts[post], rates[post])
        except CorrelationError:
            trend = None
    return LifecycleResult(
        system_id=ds.system_id,
        bin_days=bin_days,
        bin_starts=starts,
        rates=rates,
        early_vs_rest=test,
        early_days=early_days,
        early_factor=factor,
        trend=trend,
    )


def render_lifecycle_report(result: LifecycleResult) -> str:
    """Text rendering: age curve sparkline plus the burn-in verdict."""
    from ..viz.ascii import sparkline

    lines = [
        f"system {result.system_id}: failure rate by age "
        f"({result.bin_days:.0f}-day bins)",
        sparkline(result.rates),
        (
            f"first {result.early_days:.0f} days: {result.early_factor:.2f}x "
            f"the steady-state rate "
            f"({'significant' if result.early_vs_rest.significant else 'ns'}, "
            f"p={result.early_vs_rest.p_value:.1e})"
        ),
    ]
    if result.trend is not None:
        direction = "improving" if result.trend.coefficient < 0 else "degrading"
        lines.append(
            f"post-burn-in trend: rho={result.trend.coefficient:+.2f} "
            f"({direction}; "
            f"{'significant' if result.trend.significant else 'ns'})"
        )
    lines.append(
        "verdict: infant mortality "
        + ("DETECTED" if result.infant_mortality_detected else "not detected")
    )
    return "\n".join(lines)
