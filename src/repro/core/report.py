"""Plain-text rendering of every paper analysis.

:func:`full_report` runs all sections against an archive and renders
paper-style tables; the per-section renderers are also exposed so the
CLI and examples can print individual analyses.  Analyses whose data is
missing (no usage logs, no layout, ...) degrade to an explanatory line
instead of failing, mirroring how the paper restricts each analysis to
the systems that support it.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..records.dataset import Archive, HardwareGroup, SystemDataset
from ..records.taxonomy import format_label
from ..records.timeutil import Span
from ..stats.glm import GLMError
from .. import telemetry
from . import correlations, cosmic, downtime, interarrival, lifecycle, nodes, power, temperature, users, usage
from .cache import cache_stats
from .regression import (
    RegressionAnalysisError,
    fit_joint_regression,
    render_coefficient_table,
)
from .windows import WindowComparison


def _pct(x: float) -> str:
    if x != x:  # NaN
        return "NA"
    return f"{100.0 * x:.2f}%"


def _factor(x: float) -> str:
    if x != x:
        return "NA"
    return f"{x:.1f}x"


def _bar(comparison: WindowComparison, label: str) -> str:
    c, b = comparison.conditional, comparison.baseline
    sig = "sig" if comparison.test.significant else "ns"
    return (
        f"  {label:<28s} cond={_pct(c.value):>8s} base={_pct(b.value):>8s} "
        f"factor={_factor(comparison.factor):>8s} [{sig}]"
    )


def _group_systems(archive: Archive, group: HardwareGroup) -> list[SystemDataset]:
    return archive.group(group)


def render_correlations(archive: Archive) -> str:
    """Section III: same-node / same-rack / same-system correlations."""
    lines = ["== Section III: failure correlations =="]
    for group in (HardwareGroup.GROUP1, HardwareGroup.GROUP2):
        systems = _group_systems(archive, group)
        if not systems:
            lines.append(f"[{group}] no systems in archive")
            continue
        lines.append(f"[{group}] same node, after ANY failure:")
        for span in (Span.DAY, Span.WEEK):
            lines.append(
                _bar(correlations.same_node_any(systems, span), f"random {span}")
            )
        lines.append(f"[{group}] Figure 1(a): weekly follow-up by trigger type:")
        for tr in correlations.same_node_by_trigger(systems):
            lines.append(_bar(tr.comparison, f"after {format_label(tr.trigger)}"))
        lines.append(
            f"[{group}] Figure 1(b): weekly same-type vs any-type targets:"
        )
        for tg in correlations.same_node_by_target(systems):
            lines.append(
                f"  target {format_label(tg.target):<26s} "
                f"P(after same)={_pct(tg.after_same.conditional.value):>8s} "
                f"({_factor(tg.after_same.factor)})  "
                f"P(after any)={_pct(tg.after_any.conditional.value):>8s} "
                f"({_factor(tg.after_any.factor)})  "
                f"random={_pct(tg.random.value):>8s}"
            )
    g1 = _group_systems(archive, HardwareGroup.GROUP1)
    with_layout = [ds for ds in g1 if ds.has_layout]
    if with_layout:
        lines.append("[group-1] same rack (Figure 2):")
        for span in (Span.DAY, Span.WEEK):
            lines.append(
                _bar(
                    correlations.same_rack_any(with_layout, span),
                    f"any, random {span}",
                )
            )
        for tr in correlations.same_rack_by_trigger(with_layout):
            lines.append(_bar(tr.comparison, f"after {format_label(tr.trigger)}"))
    else:
        lines.append("[group-1] no layouts; rack analysis skipped")
    for group in (HardwareGroup.GROUP1, HardwareGroup.GROUP2):
        systems = _group_systems(archive, group)
        if systems:
            lines.append(f"[{group}] same system (Figure 3):")
            lines.append(
                _bar(
                    correlations.same_system_any(systems, Span.WEEK),
                    "any, random week",
                )
            )
            for tr in correlations.same_system_by_trigger(systems):
                lines.append(
                    _bar(tr.comparison, f"after {format_label(tr.trigger)}")
                )
    return "\n".join(lines)


def render_nodes(archive: Archive, system_ids: Sequence[int]) -> str:
    """Section IV: failure-prone nodes (Figures 4-6)."""
    lines = ["== Section IV: failure-prone nodes =="]
    for sid in system_ids:
        if sid not in archive.systems:
            continue
        ds = archive[sid]
        try:
            fc = nodes.failures_per_node(ds)
        except nodes.NodeAnalysisError as exc:
            lines.append(f"system {sid}: {exc}")
            continue
        wo = fc.equal_rates_without_prone
        lines.append(
            f"system {sid}: prone node {fc.prone_node} has "
            f"{fc.prone_factor:.1f}x the mean failures; equal-rates "
            f"rejected={fc.equal_rates.significant} "
            f"(p={fc.equal_rates.p_value:.2e}); without prone node "
            f"rejected={wo.significant if wo else 'NA'}"
        )
        try:
            bd = nodes.breakdown_comparison(ds, fc.prone_node)
            lines.append(
                f"  dominant mode: prone={format_label(bd.dominant(True))}, "
                f"rest={format_label(bd.dominant(False))}"
            )
        except nodes.NodeAnalysisError:
            pass
        for cell in nodes.prone_type_probabilities(
            ds, fc.prone_node, spans=[Span.WEEK]
        ):
            p = cell.prone.estimate().value
            r = cell.rest.estimate().value
            lines.append(
                f"  {format_label(cell.kind):<16s} week: prone={_pct(p):>8s} "
                f"rest={_pct(r):>8s} factor={_factor(cell.factor):>9s}"
            )
    return "\n".join(lines)


def render_usage(archive: Archive) -> str:
    """Sections V and VI: usage and user effects (Figures 7, 8)."""
    lines = ["== Sections V-VI: usage and users =="]
    any_usage = False
    for ds in archive:
        if not ds.has_usage:
            continue
        any_usage = True
        r = usage.usage_failure_correlation(ds)
        wo = r.jobs_pearson_without_prone
        lines.append(
            f"system {ds.system_id}: jobs~failures Pearson r="
            f"{r.jobs_pearson.coefficient:.3f} "
            f"(sig={r.jobs_pearson.significant}); without node "
            f"{r.prone_node}: r="
            + (f"{wo.coefficient:.3f} (sig={wo.significant})" if wo else "NA")
        )
        try:
            u = users.user_failure_rates(ds)
            lines.append(
                f"  users: {u.total_users} total; top-{len(u.users)} rate "
                f"spread {u.rate_spread:.0f}x; saturated model better: "
                f"{u.anova.significant} (p={u.anova.p_value:.2e})"
            )
        except users.UserAnalysisError as exc:
            lines.append(f"  users: {exc}")
    if not any_usage:
        lines.append("no job logs in archive; Sections V-VI skipped")
    return "\n".join(lines)


def render_power(archive: Archive) -> str:
    """Section VII: power problems (Figures 9-12)."""
    lines = ["== Section VII: power =="]
    systems = list(archive)
    try:
        bd = power.environment_breakdown(systems)
        lines.append("Figure 9 (environmental breakdown): " + ", ".join(
            f"{format_label(sub)}={_pct(share)}" for sub, share in bd.items()
        ))
    except power.PowerAnalysisError as exc:
        lines.append(f"Figure 9: {exc}")
    lines.append("Figure 10 (left): hardware failures after power problems:")
    for cell in power.hardware_impact(systems):
        lines.append(
            _bar(cell.comparison, f"{format_label(cell.trigger)} / {cell.span}")
        )
    lines.append("Figure 10 (right): per-component month factors:")
    for cell in power.hardware_component_impact(systems):
        lines.append(
            _bar(
                cell.comparison,
                f"{format_label(cell.trigger)} -> {format_label(cell.target)}",
            )
        )
    lines.append("Section VII-A.2: unscheduled maintenance within a month:")
    for cell in power.maintenance_impact(systems):
        lines.append(_bar(cell.comparison, f"after {format_label(cell.trigger)}"))
    lines.append("Figure 11 (left): software failures after power problems:")
    for cell in power.software_impact(systems):
        lines.append(
            _bar(cell.comparison, f"{format_label(cell.trigger)} / {cell.span}")
        )
    lines.append("Figure 11 (right): per-software-subtype month factors:")
    for cell in power.software_subtype_impact(systems):
        lines.append(
            _bar(
                cell.comparison,
                f"{format_label(cell.trigger)} -> {format_label(cell.target)}",
            )
        )
    return "\n".join(lines)


def render_temperature(archive: Archive) -> str:
    """Section VIII: temperature (Figure 13 and the null regressions)."""
    lines = ["== Section VIII: temperature =="]
    temp_systems = [ds for ds in archive if ds.has_temperature]
    for ds in temp_systems:
        try:
            r = temperature.temperature_regressions(ds)
            lines.append(
                f"system {ds.system_id}: avg/max/var temperature "
                f"significant for hardware failures: {r.any_significant}"
            )
        except temperature.TemperatureAnalysisError as exc:
            lines.append(f"system {ds.system_id}: {exc}")
    if not temp_systems:
        lines.append("no temperature data; regressions skipped")
    systems = list(archive)
    lines.append("Figure 13 (left): hardware failures after fan/chiller:")
    for cell in temperature.fan_chiller_impact(systems):
        lines.append(
            _bar(cell.comparison, f"{format_label(cell.trigger)} / {cell.span}")
        )
    lines.append("Figure 13 (right): per-component month factors:")
    for cell in temperature.thermal_component_impact(systems):
        lines.append(
            _bar(
                cell.comparison,
                f"{format_label(cell.trigger)} -> {format_label(cell.target)}",
            )
        )
    return "\n".join(lines)


def render_cosmic(archive: Archive, system_ids: Sequence[int] | None = None) -> str:
    """Section IX: cosmic rays (Figure 14)."""
    lines = ["== Section IX: cosmic rays =="]
    if not archive.neutron_series:
        lines.append("no neutron series; skipped")
        return "\n".join(lines)
    ids = [s for s in (system_ids or archive.system_ids) if s in archive.systems]
    try:
        for r in cosmic.cosmic_ray_analysis(archive, ids):
            coef = r.pearson.coefficient if r.pearson else float("nan")
            lines.append(
                f"system {r.system_id} {format_label(r.subtype):<12s} "
                f"r={coef:+.3f} associated={r.associated}"
            )
    except cosmic.CosmicAnalysisError as exc:
        lines.append(str(exc))
    return "\n".join(lines)


def render_regression(archive: Archive) -> str:
    """Section X: joint regression (Tables II and III)."""
    lines = ["== Section X: joint regression =="]
    done = False
    for ds in archive:
        if not (ds.has_usage and ds.has_temperature and ds.has_layout):
            continue
        try:
            r = fit_joint_regression(ds)
        except (RegressionAnalysisError, GLMError) as exc:
            # Tiny archives can produce degenerate designs (e.g. a
            # constant num_hightemp column); report why instead of dying.
            lines.append(f"system {ds.system_id}: regression skipped ({exc})")
            continue
        done = True
        lines.append(f"system {ds.system_id} -- Table II (Poisson):")
        lines.append(render_coefficient_table(r.poisson))
        lines.append(f"system {ds.system_id} -- Table III (negative binomial):")
        lines.append(render_coefficient_table(r.negbin))
        lines.append(
            "significant in both models: "
            + (", ".join(r.significant_predictors()) or "(none)")
        )
    if not done:
        lines.append(
            "no system carries jobs + temperature + layout; Section X skipped"
        )
    return "\n".join(lines)


def render_interarrival(archive: Archive, max_systems: int = 3) -> str:
    """Companion analysis: classical inter-arrival modeling (paper Sec. I).

    Not a paper figure -- the paper positions itself against this lens --
    but included so both views are available from one report.
    """
    lines = ["== Companion: classical inter-arrival modeling =="]
    shown = 0
    for ds in sorted(archive, key=lambda d: -len(d.failures)):
        if shown >= max_systems:
            break
        try:
            model = interarrival.fit_interarrival_model(ds)
        except interarrival.InterArrivalError as exc:
            lines.append(f"system {ds.system_id}: {exc}")
            continue
        lines.append(interarrival.render_interarrival_report(model))
        shown += 1
    if shown == 0:
        lines.append("no system has enough failures to model")
    return "\n".join(lines)


def render_downtime(archive: Archive) -> str:
    """Companion analysis: repair times and availability."""
    return downtime.render_downtime_report(list(archive))


def render_lifecycle(archive: Archive, max_systems: int = 3) -> str:
    """Extension: failure rate over system age (burn-in detection)."""
    lines = ["== Extension: lifecycle (failure rate vs system age) =="]
    shown = 0
    for ds in sorted(archive, key=lambda d: -len(d.failures)):
        if shown >= max_systems:
            break
        try:
            result = lifecycle.lifecycle_analysis(ds)
        except lifecycle.LifecycleAnalysisError as exc:
            lines.append(f"system {ds.system_id}: {exc}")
            continue
        lines.append(lifecycle.render_lifecycle_report(result))
        shown += 1
    if shown == 0:
        lines.append("no system has a long enough record")
    return "\n".join(lines)


#: Report sections in output order: ``(name, renderer)``.  Every
#: renderer is independent of the others, so they can run concurrently;
#: the combined report always joins them in this order.
REPORT_SECTIONS: tuple[
    tuple[str, Callable[[Archive, Sequence[int]], str]], ...
] = (
    ("correlations", lambda archive, fig4: render_correlations(archive)),
    ("nodes", lambda archive, fig4: render_nodes(archive, fig4)),
    ("usage", lambda archive, fig4: render_usage(archive)),
    ("power", lambda archive, fig4: render_power(archive)),
    ("temperature", lambda archive, fig4: render_temperature(archive)),
    ("cosmic", lambda archive, fig4: render_cosmic(archive)),
    ("regression", lambda archive, fig4: render_regression(archive)),
    ("interarrival", lambda archive, fig4: render_interarrival(archive)),
    ("downtime", lambda archive, fig4: render_downtime(archive)),
    ("lifecycle", lambda archive, fig4: render_lifecycle(archive)),
)


@dataclass(frozen=True, slots=True)
class ReportProfile:
    """Where a :func:`full_report` run spent its time.

    Attributes:
        section_seconds: per-section wall time, in output order.  Under
            ``workers > 1`` the sections overlap, so these sum to more
            than ``total_seconds``.
        total_seconds: wall time of the whole report.
        workers: worker count the report ran with (1 = serial).
        cache_hits: analysis-cache hits during this run (pooled over
            the archive's systems).
        cache_misses: analysis-cache misses during this run.
        cache_entries: memoized values held after the run.
    """

    section_seconds: tuple[tuple[str, float], ...]
    total_seconds: float
    workers: int
    cache_hits: int
    cache_misses: int
    cache_entries: int

    def render(self) -> str:
        """Human-readable profile table (the ``--profile`` output)."""
        lines = [f"report profile (workers={self.workers}):"]
        for name, seconds in self.section_seconds:
            lines.append(f"  {name:<14s} {seconds:8.3f}s")
        lines.append(f"  {'total':<14s} {self.total_seconds:8.3f}s")
        lines.append(
            f"analysis cache: {self.cache_hits} hits, "
            f"{self.cache_misses} misses, {self.cache_entries} entries"
        )
        return "\n".join(lines)


def _run_report(
    archive: Archive, fig4_systems: Sequence[int], workers: int | None
) -> tuple[str, ReportProfile]:
    """Render every section, timed via telemetry spans.

    Each section renders inside a ``report.section`` span under one
    ``report.run`` root; the :class:`ReportProfile` is read back off
    those spans, so the ``--profile`` table and a ``--trace`` tree are
    two views of the same measurement.  :func:`telemetry.ensure_trace`
    makes the spans real even when telemetry is globally disabled (the
    private trace is discarded; only the durations survive in the
    profile).  Worker threads get a :func:`telemetry.bind_context` copy
    of the submitting context, so their section spans nest under the
    run root instead of surfacing as orphan roots.
    """
    n_workers = max(1, int(workers) if workers else 1)
    hits0, misses0, _ = cache_stats(archive)

    def timed_section(
        entry: tuple[str, Callable[[Archive, Sequence[int]], str]]
    ) -> tuple[str, telemetry.Span]:
        name, render = entry
        with telemetry.span("report.section", section=name) as section_span:
            text = render(archive, fig4_systems)
        return text, section_span

    with telemetry.ensure_trace():
        with telemetry.span("report.run", workers=n_workers) as run_span:
            if n_workers == 1:
                results = [timed_section(entry) for entry in REPORT_SECTIONS]
            else:
                # One context copy per task carries the report.run span
                # into the pool threads; executor.map yields in
                # submission order, so the combined text is identical to
                # the serial run no matter how sections overlap.
                tasks = [
                    telemetry.bind_context(timed_section)
                    for _ in REPORT_SECTIONS
                ]
                with ThreadPoolExecutor(max_workers=n_workers) as pool:
                    results = list(
                        pool.map(
                            lambda pair: pair[0](pair[1]),
                            zip(tasks, REPORT_SECTIONS),
                        )
                    )
    hits1, misses1, entries = cache_stats(archive)
    run_span.set_attrs(
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
        cache_entries=entries,
    )
    profile = ReportProfile(
        section_seconds=tuple(
            (name, section_span.duration)
            for (name, _), (_, section_span) in zip(REPORT_SECTIONS, results)
        ),
        total_seconds=run_span.duration,
        workers=n_workers,
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
        cache_entries=entries,
    )
    return "\n\n".join(text for text, _ in results), profile


def full_report(
    archive: Archive,
    fig4_systems: Sequence[int] = (18, 19, 20),
    workers: int | None = None,
) -> str:
    """Run every section and render one combined report.

    Args:
        archive: the archive to analyse.
        fig4_systems: systems to run the Section IV per-node analysis on.
        workers: render up to this many sections concurrently (None or 1
            = serial).  The output text is identical at any setting.
    """
    text, _ = _run_report(archive, fig4_systems, workers)
    return text


def profiled_full_report(
    archive: Archive,
    fig4_systems: Sequence[int] = (18, 19, 20),
    workers: int | None = None,
) -> tuple[str, ReportProfile]:
    """:func:`full_report` plus a :class:`ReportProfile` of the run."""
    return _run_report(archive, fig4_systems, workers)
